//! The content-addressed strategy cache.
//!
//! A strategy is worth caching because it is expensive to find (minutes of
//! MCMC on big clusters) and cheap to store (a few hundred bytes of degree
//! vectors and device indices). The cache key is **content-addressed** —
//! it names the *computation*, not the request:
//!
//! ```text
//! g<graph signature>-t<topology signature>-b<budget class>
//! ```
//!
//! - the graph signature ([`flexflow_opgraph::graph_signature`]) is
//!   canonical over insertion order, op names and layer numbering, so any
//!   client building the same dataflow addresses the same entry;
//! - the topology signature ([`Topology::signature`](flexflow_device::Topology::signature))
//!   covers devices, routes and link contention structure;
//! - the budget class buckets the evaluation budget by bit length
//!   ([`budget_class`]), so "how hard was this searched" is part of the
//!   address without fragmenting the cache per exact eval count.
//!
//! [`StrategyCache::lookup`] answers three ways: **hit** (an entry for the
//! same graph and topology searched at least as hard — servable with zero
//! simulator evaluations), **warm** (an entry for the same graph on a
//! different topology, or searched less hard — a seed for
//! [`SearchRequest::run_warm`](flexflow_core::SearchRequest::run_warm)
//! after [`strategy_io::remap_onto`](flexflow_core::strategy_io::remap_onto)),
//! or **miss**.
//!
//! Entries persist as JSON files of versioned, signature-stamped
//! [`StrategyRecord`]s, reloaded on startup and rewritten atomically
//! (temp file + rename) on every accepted insert. This module is the
//! single-map primitive; [`crate::store`] layers sharding, LRU bounds and
//! the [`StrategyStore`](crate::store::StrategyStore) trait on top of it.

use flexflow_core::strategy_io::{
    parse_signature_hex, StrategyRecord, FORMAT_VERSION, MIN_FORMAT_VERSION,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// On-disk cache file version; bump on incompatible layout changes.
pub const CACHE_FILE_VERSION: u32 = 1;

/// Buckets an evaluation budget by bit length: class 1 covers 1 eval,
/// class 2 covers 2..=3, class 11 covers 1024..=2047, and so on. An entry
/// of class `b` answers any request of class `<= b` — the cached strategy
/// was searched at least as hard as the request asks.
pub fn budget_class(evals: u64) -> u32 {
    64 - evals.max(1).leading_zeros()
}

/// Folds the request's search-axis knobs into the budget class: the low
/// byte is the [`budget_class`] of the evaluation budget, bits 8..16
/// carry the exact microbatch cap **when pipelining is enabled** (`0`
/// when `max_microbatches <= 1`), bit 16 marks a search with the
/// parameter-sync axis enabled, and bit 17 one with the
/// activation-recompute axis enabled (`0` when off — so every
/// pre-pipeline, pre-param-sync and pre-recompute cache entry and request
/// keeps its original class value, and old cache files stay addressable).
///
/// The components are compared differently by [`StrategyCache::lookup`]:
/// eval classes order (searched harder answers softer), while the
/// microbatch cap, param-sync flag and recompute flag must match exactly
/// — a strategy searched with any axis enabled may use settings (`m > 1`,
/// ZeRO/PS sync, recompute bits) the plainer requester cannot execute,
/// and vice versa the axis-enabled requester wants the larger space
/// actually searched.
pub fn composite_class(
    evals: u64,
    max_microbatches: u64,
    param_sync: bool,
    recompute: bool,
) -> u32 {
    let mb = if max_microbatches > 1 {
        u32::try_from(max_microbatches.min(255)).expect("capped at 255")
    } else {
        0
    };
    budget_class(evals) | (mb << 8) | (u32::from(param_sync) << 16) | (u32::from(recompute) << 17)
}

/// Splits a [`composite_class`] into
/// `(recompute flag, param-sync flag, microbatch cap, eval class)`.
pub(crate) fn split_class(class: u32) -> (u32, u32, u32, u32) {
    (
        (class >> 17) & 1,
        (class >> 16) & 1,
        (class >> 8) & 0xff,
        class & 0xff,
    )
}

/// A fully resolved cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// Canonical op-graph signature.
    pub graph_sig: u64,
    /// Topology content signature.
    pub topo_sig: u64,
    /// Bit-length bucket of the evaluation budget.
    pub budget_class: u32,
}

impl CacheKey {
    /// The content address this key stores under.
    pub fn address(&self) -> String {
        format!(
            "g{:016x}-t{:016x}-b{:02}",
            self.graph_sig, self.topo_sig, self.budget_class
        )
    }
}

/// One cached strategy: the signed record plus request-facing audit fields
/// (what model/cluster the entry was first computed for — informational
/// only; the signatures are the authority).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CacheEntry {
    /// Budget class the entry was searched under.
    pub budget_class: u32,
    /// Model name of the first request that produced the entry.
    pub model: String,
    /// GPU count of that request.
    pub gpus: usize,
    /// Cluster flavour of that request.
    pub cluster: String,
    /// The signed, versioned strategy record.
    pub record: StrategyRecord,
}

impl CacheEntry {
    /// The entry's content-addressed key, if its stored signatures parse.
    pub fn key(&self) -> Option<CacheKey> {
        Some(CacheKey {
            graph_sig: parse_signature_hex(&self.record.graph_sig)?,
            topo_sig: parse_signature_hex(&self.record.topo_sig)?,
            budget_class: self.budget_class,
        })
    }
}

/// Serialized form of the whole cache.
#[derive(Debug, Serialize, Deserialize)]
struct CacheFile {
    version: u32,
    entries: Vec<CacheEntry>,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lookup<'a> {
    /// Same graph, same topology, searched at least as hard: servable
    /// as-is, zero simulator evaluations.
    Hit(&'a CacheEntry),
    /// Same graph but a different topology or a smaller budget: a seed
    /// for warm-started search.
    Warm(&'a CacheEntry),
    /// Nothing reusable.
    Miss,
}

/// The in-memory cache: content address -> entry, kept sorted so the
/// persisted file is deterministic.
#[derive(Debug, Default)]
pub struct StrategyCache {
    entries: BTreeMap<String, CacheEntry>,
}

impl StrategyCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Loads a cache file. A missing file is an empty cache (first run);
    /// a malformed or version-incompatible file is an error — the caller
    /// decides whether to start empty or abort. Entries whose record
    /// version or signatures do not parse are skipped, not fatal: one
    /// stale entry must not take the whole cache down.
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable files, malformed JSON, or an
    /// unsupported cache file version.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::new());
        }
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let file: CacheFile =
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))?;
        if file.version != CACHE_FILE_VERSION {
            return Err(format!(
                "cache file {path:?} is v{}, this build reads v{CACHE_FILE_VERSION}",
                file.version
            ));
        }
        let mut cache = Self::new();
        for entry in file.entries {
            // Records from MIN_FORMAT_VERSION on still import (older dumps
            // default to microbatches = 1), so pre-pipeline cache files
            // keep serving.
            if (MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&entry.record.version)
                && entry.key().is_some()
            {
                cache.insert(entry);
            }
        }
        Ok(cache)
    }

    /// Serializes the whole cache to its on-disk JSON form — a consistent
    /// snapshot the caller can persist with [`write_snapshot`] *after*
    /// releasing whatever lock guards the cache (serialization is pure
    /// string work; the disk write and fsync should never run under a
    /// lock that concurrent lookups need).
    pub fn snapshot_json(&self) -> String {
        let file = CacheFile {
            version: CACHE_FILE_VERSION,
            entries: self.entries.values().cloned().collect(),
        };
        serde_json::to_string_pretty(&file).expect("serialize cache")
    }

    /// Writes the cache atomically (see [`write_snapshot`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the temp write or the rename.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        write_snapshot(path, &self.snapshot_json())
    }

    /// Looks up the best answer for `(graph_sig, topo_sig, class)`.
    ///
    /// Hits prefer the hardest-searched entry (highest budget class),
    /// then the lowest cost. Warm candidates prefer entries for the same
    /// topology (their device assignment survives verbatim), then the
    /// hardest-searched, then the cheapest — deterministic because the
    /// underlying map iterates in address order.
    pub fn lookup(&self, graph_sig: u64, topo_sig: u64, class: u32) -> Lookup<'_> {
        let (want_rc, want_ps, want_mb, want_ev) = split_class(class);
        let mut hit: Option<(&CacheEntry, CacheKey)> = None;
        let mut warm: Option<(&CacheEntry, CacheKey)> = None;
        for entry in self.entries.values() {
            let Some(key) = entry.key() else { continue };
            if key.graph_sig != graph_sig {
                continue;
            }
            let (got_rc, got_ps, got_mb, got_ev) = split_class(key.budget_class);
            if key.topo_sig == topo_sig
                && got_rc == want_rc
                && got_ps == want_ps
                && got_mb == want_mb
                && got_ev >= want_ev
            {
                let better = hit.is_none_or(|(best, bk)| {
                    (
                        bk.budget_class,
                        std::cmp::Reverse(best.record.cost_us.to_bits()),
                    ) < (
                        key.budget_class,
                        std::cmp::Reverse(entry.record.cost_us.to_bits()),
                    )
                });
                if better {
                    hit = Some((entry, key));
                }
            } else {
                let rank = |e: &CacheEntry, k: CacheKey| {
                    let (k_rc, k_ps, k_mb, k_ev) = split_class(k.budget_class);
                    (
                        k.topo_sig == topo_sig,
                        k_rc == want_rc,
                        k_ps == want_ps,
                        k_mb == want_mb,
                        k_ev,
                        std::cmp::Reverse(e.record.cost_us.to_bits()),
                    )
                };
                if warm.is_none_or(|(best, bk)| rank(entry, key) > rank(best, bk)) {
                    warm = Some((entry, key));
                }
            }
        }
        match (hit, warm) {
            (Some((e, _)), _) => Lookup::Hit(e),
            (None, Some((e, _))) => Lookup::Warm(e),
            (None, None) => Lookup::Miss,
        }
    }

    /// Inserts an entry, keeping the better strategy when the address is
    /// already occupied (lower cost wins; ties keep the incumbent).
    /// Returns whether the entry was stored. Entries with unparseable
    /// signatures are rejected.
    pub fn insert(&mut self, entry: CacheEntry) -> bool {
        let Some(key) = entry.key() else {
            return false;
        };
        let address = key.address();
        match self.entries.get(&address) {
            Some(existing) if existing.record.cost_us <= entry.record.cost_us => false,
            _ => {
                self.entries.insert(address, entry);
                true
            }
        }
    }

    /// Evicts the entry at a content address (used when a stored record
    /// fails validation at serving time: a corrupt entry must not pin its
    /// address — `insert`'s lower-cost-wins rule would otherwise keep
    /// rejecting the honest replacement forever).
    pub fn remove(&mut self, address: &str) -> Option<CacheEntry> {
        self.entries.remove(address)
    }

    /// All entries in address order.
    pub fn entries(&self) -> impl Iterator<Item = (&String, &CacheEntry)> {
        self.entries.iter()
    }

    /// The entry stored at a content address, if any.
    pub fn get(&self, address: &str) -> Option<&CacheEntry> {
        self.entries.get(address)
    }
}

/// Atomically persists a [`StrategyCache::snapshot_json`] snapshot:
/// write to a uniquely named temp file in the same directory, fsync, then
/// rename over `path` — a crash mid-write never corrupts the cache a
/// later startup reloads, and concurrent writers (each with their own
/// temp file) settle last-rename-wins with every intermediate state being
/// a complete snapshot.
///
/// # Errors
///
/// Propagates I/O errors from the temp write or the rename.
pub fn write_snapshot(path: &Path, json: &str) -> std::io::Result<()> {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexflow_core::strategy_io::{export_record, signature_hex};
    use flexflow_core::Strategy;
    use flexflow_device::clusters;
    use flexflow_opgraph::zoo;

    fn entry(graph_sig: u64, topo_sig: u64, class: u32, cost: f64) -> CacheEntry {
        let g = zoo::lenet(64);
        let topo = clusters::uniform_cluster(1, 2, 16.0, 4.0);
        let s = Strategy::data_parallel(&g, &topo);
        let mut record = export_record(&g, &topo, &s, cost, 100);
        record.graph_sig = signature_hex(graph_sig);
        record.topo_sig = signature_hex(topo_sig);
        CacheEntry {
            budget_class: class,
            model: "lenet".into(),
            gpus: 2,
            cluster: "p100".into(),
            record,
        }
    }

    #[test]
    fn budget_class_buckets_by_bit_length() {
        assert_eq!(budget_class(0), 1);
        assert_eq!(budget_class(1), 1);
        assert_eq!(budget_class(2), 2);
        assert_eq!(budget_class(1024), 11);
        assert_eq!(budget_class(1025), 11);
        assert_eq!(budget_class(2048), 12);
        assert_eq!(budget_class(u64::MAX), 64);
    }

    #[test]
    fn composite_class_separates_pipelined_requests() {
        // Pipelining off: exactly the historical class, so pre-pipeline
        // cache files keep their addresses.
        assert_eq!(composite_class(1024, 1, false, false), budget_class(1024));
        assert_eq!(composite_class(1024, 0, false, false), budget_class(1024));
        // Pipelining on: the cap rides the high bits.
        assert_eq!(
            composite_class(1024, 4, false, false),
            budget_class(1024) | (4 << 8)
        );
        assert_eq!(
            composite_class(7, 255, false, false),
            budget_class(7) | (255 << 8)
        );
        assert_eq!(
            composite_class(7, 10_000, false, false),
            budget_class(7) | (255 << 8)
        );

        // Hits require the microbatch component to match exactly: a
        // harder-searched pipelined entry must NOT answer a plain
        // request (its strategy may use m > 1) and vice versa.
        let mut c = StrategyCache::new();
        assert!(c.insert(entry(1, 2, composite_class(1024, 4, false, false), 100.0)));
        assert!(matches!(
            c.lookup(1, 2, composite_class(64, 1, false, false)),
            Lookup::Warm(_)
        ));
        assert!(matches!(
            c.lookup(1, 2, composite_class(64, 8, false, false)),
            Lookup::Warm(_)
        ));
        // Same cap, softer eval budget: a hit.
        assert!(matches!(
            c.lookup(1, 2, composite_class(64, 4, false, false)),
            Lookup::Hit(_)
        ));
    }

    #[test]
    fn composite_class_separates_param_sync_requests() {
        // Axis off: exactly the historical class, so pre-PR8 cache files
        // keep their addresses.
        assert_eq!(composite_class(1024, 1, false, false), budget_class(1024));
        // Axis on: the flag rides bit 16, orthogonal to the microbatch cap.
        assert_eq!(
            composite_class(1024, 1, true, false),
            budget_class(1024) | (1 << 16)
        );
        assert_eq!(
            composite_class(1024, 4, true, false),
            budget_class(1024) | (4 << 8) | (1 << 16)
        );

        // The bugfix this class guards: an entry searched WITH the sync
        // axis may carry ZeRO/PS modes a plain requester cannot execute,
        // so a mismatched flag must demote the near-miss to a warm seed —
        // never serve it as a hit (the pre-fix behavior treated the
        // harder-searched entry as directly servable).
        let mut c = StrategyCache::new();
        assert!(c.insert(entry(1, 2, composite_class(1024, 1, true, false), 100.0)));
        assert!(matches!(
            c.lookup(1, 2, composite_class(64, 1, false, false)),
            Lookup::Warm(_)
        ));
        // And the mirror image: an axis-on request must not be served an
        // axis-off entry as a hit (it wants the larger space searched).
        assert!(c.insert(entry(3, 2, composite_class(1024, 1, false, false), 100.0)));
        assert!(matches!(
            c.lookup(3, 2, composite_class(64, 1, true, false)),
            Lookup::Warm(_)
        ));
        // Matching flag: a hit as usual.
        assert!(matches!(
            c.lookup(1, 2, composite_class(64, 1, true, false)),
            Lookup::Hit(_)
        ));
        // Among equally-foreign topologies, same-flag warm candidates
        // outrank mismatched ones.
        assert!(c.insert(entry(1, 9, composite_class(1024, 1, false, false), 90.0)));
        let Lookup::Warm(w) = c.lookup(1, 7, composite_class(64, 1, true, false)) else {
            panic!("expected warm")
        };
        assert_eq!(w.budget_class, composite_class(1024, 1, true, false));
    }

    #[test]
    fn composite_class_separates_recompute_requests() {
        // Axis off: exactly the historical class, so pre-PR9 cache files
        // keep their addresses.
        assert_eq!(composite_class(1024, 1, false, false), budget_class(1024));
        // Axis on: the flag rides bit 17, orthogonal to both the
        // microbatch cap and the param-sync flag.
        assert_eq!(
            composite_class(1024, 1, false, true),
            budget_class(1024) | (1 << 17)
        );
        assert_eq!(
            composite_class(1024, 4, true, true),
            budget_class(1024) | (4 << 8) | (1 << 16) | (1 << 17)
        );

        // An entry searched WITH the recompute axis may carry recompute
        // bits a plain requester cannot execute, so a mismatched flag
        // demotes the near-miss to a warm seed — never a hit.
        let mut c = StrategyCache::new();
        assert!(c.insert(entry(1, 2, composite_class(1024, 1, false, true), 100.0)));
        assert!(matches!(
            c.lookup(1, 2, composite_class(64, 1, false, false)),
            Lookup::Warm(_)
        ));
        // Mirror image: an axis-on request is not served an axis-off hit.
        assert!(c.insert(entry(3, 2, composite_class(1024, 1, false, false), 100.0)));
        assert!(matches!(
            c.lookup(3, 2, composite_class(64, 1, false, true)),
            Lookup::Warm(_)
        ));
        // Matching flag: a hit as usual.
        assert!(matches!(
            c.lookup(1, 2, composite_class(64, 1, false, true)),
            Lookup::Hit(_)
        ));
        // Among equally-foreign topologies, same-flag warm candidates
        // outrank mismatched ones.
        assert!(c.insert(entry(1, 9, composite_class(1024, 1, false, false), 90.0)));
        let Lookup::Warm(w) = c.lookup(1, 7, composite_class(64, 1, false, true)) else {
            panic!("expected warm")
        };
        assert_eq!(w.budget_class, composite_class(1024, 1, false, true));
    }

    #[test]
    fn address_is_stable_and_readable() {
        let k = CacheKey {
            graph_sig: 0xabc,
            topo_sig: 0x123,
            budget_class: 11,
        };
        assert_eq!(k.address(), "g0000000000000abc-t0000000000000123-b11");
    }

    #[test]
    fn lookup_prefers_hit_over_warm_and_ranks_warm_candidates() {
        let mut c = StrategyCache::new();
        assert_eq!(c.lookup(1, 2, 3), Lookup::Miss);

        // Same graph, other topology: warm.
        assert!(c.insert(entry(1, 9, 5, 100.0)));
        assert!(matches!(c.lookup(1, 2, 3), Lookup::Warm(_)));

        // Same graph + topology but searched less hard: still warm.
        assert!(c.insert(entry(1, 2, 2, 90.0)));
        let Lookup::Warm(w) = c.lookup(1, 2, 3) else {
            panic!("expected warm")
        };
        assert_eq!(w.record.topo_sig, signature_hex(2), "same-topology first");

        // Hard-enough same-topology entry: hit, and it wins over warm.
        assert!(c.insert(entry(1, 2, 3, 80.0)));
        let Lookup::Hit(h) = c.lookup(1, 2, 3) else {
            panic!("expected hit")
        };
        assert_eq!(h.budget_class, 3);

        // A harder-searched hit is preferred over a softer one.
        assert!(c.insert(entry(1, 2, 7, 85.0)));
        let Lookup::Hit(h) = c.lookup(1, 2, 3) else {
            panic!("expected hit")
        };
        assert_eq!(h.budget_class, 7);

        // Unrelated graph: miss.
        assert_eq!(c.lookup(42, 2, 3), Lookup::Miss);
    }

    #[test]
    fn insert_keeps_the_better_strategy() {
        let mut c = StrategyCache::new();
        assert!(c.insert(entry(1, 2, 3, 100.0)));
        assert!(!c.insert(entry(1, 2, 3, 100.0)), "ties keep the incumbent");
        assert!(!c.insert(entry(1, 2, 3, 150.0)), "worse is rejected");
        assert!(c.insert(entry(1, 2, 3, 50.0)), "better replaces");
        assert_eq!(c.len(), 1);
        let Lookup::Hit(h) = c.lookup(1, 2, 3) else {
            panic!("expected hit")
        };
        assert!((h.record.cost_us - 50.0).abs() < 1e-9);
    }

    #[test]
    fn save_load_roundtrip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("ff-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        assert!(StrategyCache::load(&path).unwrap().is_empty());

        let mut c = StrategyCache::new();
        c.insert(entry(1, 2, 3, 100.0));
        c.insert(entry(4, 5, 6, 200.0));
        c.save(&path).unwrap();

        let back = StrategyCache::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        let pairs: Vec<_> = back.entries().collect();
        let orig: Vec<_> = c.entries().collect();
        assert_eq!(pairs, orig);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_files_error_cleanly() {
        let dir = std::env::temp_dir().join(format!("ff-cache-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        std::fs::write(&path, "{ not json").unwrap();
        assert!(StrategyCache::load(&path).is_err());

        std::fs::write(&path, r#"{"version":999,"entries":[]}"#).unwrap();
        let err = StrategyCache::load(&path).unwrap_err();
        assert!(err.contains("v999"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_record_versions_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("ff-cache-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        let mut good = StrategyCache::new();
        good.insert(entry(1, 2, 3, 100.0));
        let mut stale = entry(7, 8, 9, 50.0);
        stale.record.version = FORMAT_VERSION + 1;
        // Write a file containing both by hand.
        let file = CacheFile {
            version: CACHE_FILE_VERSION,
            entries: vec![entry(1, 2, 3, 100.0), stale],
        };
        std::fs::write(&path, serde_json::to_string(&file).unwrap()).unwrap();

        let back = StrategyCache::load(&path).unwrap();
        assert_eq!(back.len(), 1, "stale entry dropped, good one kept");

        std::fs::remove_dir_all(&dir).ok();
    }
}
