//! `flexflow-server` — the concurrent strategy-serving daemon.
//!
//! The paper's end product is a *strategy*: a placement/parallelization
//! plan found once by MCMC search and reused for an entire training run.
//! That makes the optimizer a natural request/response service with
//! aggressive caching — clients name a `(model, cluster, budget)` triple,
//! and the daemon answers from a persistent **content-addressed strategy
//! cache**, warm-starting the search from near-miss entries instead of
//! re-deriving everything from data parallelism:
//!
//! ```text
//!  client ── {"model":"rnnlm","gpus":4,"evals":2000} ──>  flexflow serve
//!                                                           │
//!                        key = (graph sig, topo sig, budget class)
//!                                                           │
//!                 ┌── hit ──── cached record, 0 evaluations │
//!                 ├── warm ─── remap cached strategy, seed SearchRequest::run_warm
//!                 └── cold ─── search from data-parallel + expert seeds
//! ```
//!
//! - [`protocol`] — the versioned line-delimited JSON envelope (v2 adds a
//!   `verb` field; v1 requests keep parsing unchanged);
//! - [`cache`] — the content-addressed cache primitive and disk format;
//! - [`store`] — the [`StrategyStore`] trait over it: the sharded,
//!   LRU-bounded production store and the legacy single-map store;
//! - [`server`] — the worker pool and the oneshot/socket/TCP front-ends;
//! - [`polish`] — the background daemon that re-searches hot entries at
//!   escalating budgets and CAS-publishes strictly-better strategies.
//!
//! # Quickstart
//!
//! [`ServerHandle::builder`] is the assembled product — store, workers,
//! polish daemon — while [`Server::new`] remains the bare engine:
//!
//! ```
//! use flexflow_server::ServerHandle;
//!
//! let handle = ServerHandle::builder().workers(1).build();
//! let resp = handle.handle_line(r#"{"model":"lenet","gpus":2,"evals":20,"seed":1}"#);
//! assert!(resp.contains(r#""cache":"cold""#));
//! // The same request again is a pure cache hit: zero evaluations.
//! let resp = handle.handle_line(r#"{"model":"lenet","gpus":2,"evals":20,"seed":1}"#);
//! assert!(resp.contains(r#""cache":"hit""#));
//! assert!(resp.contains(r#""evals":0"#));
//! ```

#![warn(missing_docs)]
pub mod cache;
pub mod polish;
pub mod protocol;
pub mod server;
pub mod store;

pub use cache::{budget_class, CacheEntry, CacheKey, Lookup, StrategyCache};
pub use polish::{PolishConfig, PolishOutcome};
pub use protocol::{parse_envelope, parse_request, Envelope, Request, SearchRequest};
pub use server::{CacheOutcome, Server, ServerBuilder, ServerConfig, ServerHandle};
pub use store::{
    CacheBounds, HotEntry, LegacyStore, ShardStats, ShardedStore, StoreLookup, StrategyStore,
    Upgrade,
};
