//! `flexflow-server` — the concurrent strategy-serving daemon.
//!
//! The paper's end product is a *strategy*: a placement/parallelization
//! plan found once by MCMC search and reused for an entire training run.
//! That makes the optimizer a natural request/response service with
//! aggressive caching — clients name a `(model, cluster, budget)` triple,
//! and the daemon answers from a persistent **content-addressed strategy
//! cache**, warm-starting the search from near-miss entries instead of
//! re-deriving everything from data parallelism:
//!
//! ```text
//!  client ── {"model":"rnnlm","gpus":4,"evals":2000} ──>  flexflow serve
//!                                                           │
//!                        key = (graph sig, topo sig, budget class)
//!                                                           │
//!                 ┌── hit ──── cached record, 0 evaluations │
//!                 ├── warm ─── remap cached strategy, seed ParallelSearch
//!                 └── cold ─── search from data-parallel + expert seeds
//! ```
//!
//! - [`protocol`] — the line-delimited JSON request/response surface;
//! - [`cache`] — the content-addressed cache and its on-disk format;
//! - [`server`] — the worker pool and the oneshot/socket front-ends.
//!
//! # Quickstart
//!
//! ```
//! use flexflow_server::server::{Server, ServerConfig};
//!
//! let server = Server::new(ServerConfig::default());
//! let resp = server.handle_line(r#"{"model":"lenet","gpus":2,"evals":20,"seed":1}"#);
//! assert!(resp.contains(r#""cache":"cold""#));
//! // The same request again is a pure cache hit: zero evaluations.
//! let resp = server.handle_line(r#"{"model":"lenet","gpus":2,"evals":20,"seed":1}"#);
//! assert!(resp.contains(r#""cache":"hit""#));
//! assert!(resp.contains(r#""evals":0"#));
//! ```

#![warn(missing_docs)]
pub mod cache;
pub mod protocol;
pub mod server;

pub use cache::{budget_class, CacheEntry, CacheKey, Lookup, StrategyCache};
pub use protocol::{parse_request, Request, SearchRequest};
pub use server::{CacheOutcome, Server, ServerConfig};
