//! The background polish daemon: idle worker cycles spent making the
//! cache *better*, not just warmer.
//!
//! A serving daemon's steady state is mostly hits — the workers sit
//! idle while the cache answers from memory. Those cycles are exactly
//! the budget the original requests didn't have: the daemon picks the
//! **hottest** entry (most hits since last polished), re-searches it
//! warm-started from its own cached strategy at an **escalating**
//! budget ([`Budget::escalated`]: double the entry's recorded effort,
//! then double again each round), and publishes the result through a
//! version-checked CAS ([`StrategyStore::upgrade`]) so a concurrent
//! foreground insert can never be overwritten by a *worse* polish
//! result:
//!
//! ```text
//!   hottest() ──> re-search (warm, 2^round × evals) ──> upgrade(CAS)
//!      │                                                   │
//!      │  version matched: publish if cost <= cached       │
//!      │  version moved:   publish only if strictly better │
//!      └── either way the entry cools (hits reset) ────────┘
//! ```
//!
//! Polishing never makes a served answer worse: a published record has
//! at-least-as-good simulated cost and a *larger* recorded `evals`, so
//! it also answers harder budget classes than the entry it replaced.

use crate::cache::{composite_class, split_class, CacheEntry};
use crate::protocol::{self, SearchRequest};
use crate::server::{cluster_from_name, try_build_workload, Server};
use crate::store::{HotEntry, Upgrade};
use flexflow_core::strategy_io;
use flexflow_core::{Budget, SimConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Polish daemon tunables.
#[derive(Debug, Clone)]
pub struct PolishConfig {
    /// Sleep between polish passes in milliseconds.
    pub interval_ms: u64,
    /// Rounds per entry before the daemon considers it done (the budget
    /// doubles each round, so 6 rounds spend `~2^7×` the original
    /// search effort in total).
    pub max_rounds: u32,
    /// Hard cap on a single polish search's evaluation budget.
    pub max_evals: u64,
    /// MCMC chains per polish search (1 keeps polish strictly cheaper
    /// than foreground traffic).
    pub chains: usize,
    /// Base RNG seed; each search mixes in the graph signature and the
    /// round so repeated polishes explore differently but
    /// deterministically.
    pub seed: u64,
}

impl Default for PolishConfig {
    fn default() -> Self {
        Self {
            interval_ms: 200,
            max_rounds: 6,
            max_evals: protocol::MAX_EVALS,
            chains: 1,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// What one [`step`] did.
#[derive(Debug, Clone, PartialEq)]
pub enum PolishOutcome {
    /// Nothing to polish (empty store, foreground traffic in flight, or
    /// every hot entry already fully polished).
    Idle,
    /// A strictly-better (or equal-cost, harder-searched) record was
    /// published.
    Published {
        /// Content address that was upgraded.
        address: String,
        /// Simulated cost before the polish.
        cost_before: f64,
        /// Simulated cost after (`<= cost_before` when the version
        /// matched, `< cost_before` otherwise).
        cost_after: f64,
        /// Evaluations this polish pass spent.
        evals: u64,
    },
    /// The re-search found nothing better; the entry's round advanced.
    NoImprovement {
        /// Content address that was polished.
        address: String,
        /// Evaluations this polish pass spent.
        evals: u64,
    },
    /// A concurrent writer published something at least as good first.
    Lost {
        /// Content address that was contested.
        address: String,
    },
    /// The entry could not be polished (unknown model/cluster, signature
    /// drift, remap failure); it was cooled so the daemon moves on.
    Skipped {
        /// Content address that was skipped.
        address: String,
    },
}

/// Cools an unpolishable entry by re-publishing it unchanged: the CAS
/// resets its heat and advances its round, so [`StrategyStore::hottest`]
/// stops proposing it every pass.
fn cool(server: &Server, hot: &HotEntry) -> PolishOutcome {
    server
        .store()
        .upgrade(&hot.address, hot.version, hot.entry.clone());
    PolishOutcome::Skipped {
        address: hot.address.clone(),
    }
}

/// Runs one polish pass: pick the hottest entry, re-search it at an
/// escalated budget, CAS-publish the result. Returns what happened;
/// never blocks on foreground traffic (the store locks it takes are the
/// same microsecond-scale shard locks lookups use, and the search runs
/// outside all of them).
pub fn step(server: &Server, cfg: &PolishConfig) -> PolishOutcome {
    let Some(hot) = server.store().hottest() else {
        return PolishOutcome::Idle;
    };
    if hot.polish_round >= cfg.max_rounds {
        return PolishOutcome::Idle;
    }
    let entry = &hot.entry;

    // Rebuild the workload the entry was computed for. The audit fields
    // (model/gpus/cluster) are informational, so verify the rebuilt
    // graph/topology signatures against the record's before trusting
    // them — an entry imported from a foreign cache file polishes only
    // if it still means what it says.
    let Some(cluster) = cluster_from_name(&entry.cluster) else {
        return cool(server, &hot);
    };
    if !protocol::KNOWN_MODELS.contains(&entry.model.as_str()) {
        return cool(server, &hot);
    }
    let mut req = SearchRequest::new(entry.model.clone());
    req.gpus = entry.gpus;
    req.cluster = cluster;
    let Ok((graph, topo)) = try_build_workload(&req) else {
        return cool(server, &hot);
    };
    let Some(key) = entry.key() else {
        return cool(server, &hot);
    };
    let graph_sig = flexflow_opgraph::graph_signature(&graph);
    if graph_sig != key.graph_sig || topo.signature() != key.topo_sig {
        return cool(server, &hot);
    }
    let Ok(seed_strategy) = strategy_io::remap_onto(&graph, &topo, &entry.record.dump) else {
        return cool(server, &hot);
    };

    // Same SOAP axes the entry was searched under, read back out of its
    // budget class — polishing must not move an entry between classes'
    // exact-match components, only along the ordered eval axis.
    let (rc, ps, mb, _ev) = split_class(entry.budget_class);
    let max_microbatches = u64::from(mb.max(1));
    let budget = Budget::escalated(
        entry.record.evals,
        hot.polish_round,
        cfg.max_evals.min(protocol::MAX_EVALS),
    );
    let search_seed = cfg.seed ^ graph_sig ^ u64::from(hot.polish_round);
    let result = flexflow_core::SearchRequest::new(search_seed)
        .chains(cfg.chains.max(1))
        .max_microbatches(max_microbatches)
        .param_sync(ps == 1)
        .recompute(rc == 1)
        .run_warm(
            &graph,
            &topo,
            &flexflow_costmodel::MeasuredCostModel::paper_default(),
            seed_strategy,
            budget,
            SimConfig::default(),
        );

    let stats = server.stats();
    stats.polish_runs.fetch_add(1, Ordering::Relaxed);
    stats.polish_evals.fetch_add(result.evals, Ordering::Relaxed);

    // The candidate's recorded effort is cumulative (original + polish),
    // so its budget class answers everything the old entry did and more.
    let total_evals = entry.record.evals.saturating_add(result.evals);
    let candidate = CacheEntry {
        budget_class: composite_class(total_evals, max_microbatches, ps == 1, rc == 1),
        model: entry.model.clone(),
        gpus: entry.gpus,
        cluster: entry.cluster.clone(),
        record: strategy_io::export_record(
            &graph,
            &topo,
            &result.best,
            result.best_cost_us,
            total_evals,
        ),
    };
    let cost_before = entry.record.cost_us;
    let cost_after = result.best_cost_us;
    if cost_after > cost_before {
        // Strictly worse: don't even offer it to the CAS — advance the
        // round by re-publishing the current entry unchanged.
        server
            .store()
            .upgrade(&hot.address, hot.version, entry.clone());
        return PolishOutcome::NoImprovement {
            address: hot.address.clone(),
            evals: result.evals,
        };
    }
    match server.store().upgrade(&hot.address, hot.version, candidate) {
        Upgrade::Published => {
            stats.polish_published.fetch_add(1, Ordering::Relaxed);
            PolishOutcome::Published {
                address: hot.address.clone(),
                cost_before,
                cost_after,
                evals: result.evals,
            }
        }
        Upgrade::Lost => PolishOutcome::Lost {
            address: hot.address.clone(),
        },
        Upgrade::NoImprovement => PolishOutcome::NoImprovement {
            address: hot.address.clone(),
            evals: result.evals,
        },
    }
}

/// The daemon loop: polish whenever the workers are idle, sleep
/// otherwise; exit when `stop` is raised or the server starts shutting
/// down. Spawned by [`crate::server::ServerBuilder::polish`].
pub fn run_daemon(server: &Arc<Server>, cfg: &PolishConfig, stop: &Arc<AtomicBool>) {
    let interval = Duration::from_millis(cfg.interval_ms.max(1));
    while !stop.load(Ordering::Acquire) && !server.shutting_down() {
        // Idle cycles only: foreground searches own the worker budget.
        if server.active_searches() == 0 && !server.store().is_empty() {
            let _ = step(server, cfg);
        }
        std::thread::sleep(interval);
    }
}
