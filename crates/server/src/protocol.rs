//! The wire protocol: a versioned envelope over line-delimited JSON.
//!
//! One request per line, one response line per request, in order. The
//! protocol is deliberately tiny and self-describing so `nc` and shell
//! pipelines are first-class clients. Two envelope versions coexist:
//!
//! ```text
//! v1 (no "v" field — every PR 4-era client keeps working unchanged):
//! {"cmd":"search","model":"rnnlm","gpus":4,"evals":2000,"seed":42}
//! {"cmd":"stats"}
//!
//! v2 (explicit version, "verb" instead of "cmd"):
//! {"v":2,"verb":"search","model":"rnnlm","gpus":4,"evals":2000}
//! {"v":2,"verb":"stats"}
//! {"v":2,"verb":"shutdown"}
//! ```
//!
//! An absent `"v"` means v1 semantics: `cmd` defaults to `"search"`, so
//! `{"model":"rnnlm"}` is a complete request, and responses carry no `v`
//! marker. A `"v":2` envelope requires an explicit `"verb"` and its
//! responses echo `"v":2`; the body fields of `search` are identical in
//! both versions. Unknown *fields* are ignored in every version (forward
//! compatibility); an unknown *version* is an error. Malformed lines
//! produce an in-band `{"status":"error",...}` response, never a dead
//! connection.
//!
//! Responses to `search` report how the answer was produced:
//!
//! - `"cache":"hit"` — answered straight from the content-addressed
//!   cache, zero simulator evaluations;
//! - `"cache":"warm"` — a near-miss entry (same op graph, different
//!   topology or smaller budget) seeded the search;
//! - `"cache":"cold"` — full search from the data-parallel and expert
//!   seeds.

use flexflow_device::DeviceKind;
use serde::Value;

/// Newest envelope version this build speaks.
pub const PROTOCOL_VERSION: u32 = 2;

/// Cap on the per-request evaluation budget: a typo'd `"evals": 1e12`
/// must not wedge a worker for hours.
pub const MAX_EVALS: u64 = 1_000_000;

/// Cap on requested cluster size (the paper's largest is 64 GPUs).
pub const MAX_GPUS: usize = 256;

/// Cap on requested search chains per request.
pub const MAX_CHAINS: usize = 64;

/// Cap on the per-request microbatch cap (pipeline depth beyond the batch
/// size buys nothing; 64 matches the largest paper cluster).
pub const MAX_MICROBATCHES: u64 = 64;

/// Models the server can build, in [`flexflow_opgraph::zoo::by_name`]'s
/// vocabulary.
pub const KNOWN_MODELS: [&str; 10] = [
    "lenet",
    "alexnet",
    "vgg16",
    "inception_v3",
    "resnet101",
    "rnntc",
    "rnnlm",
    "nmt",
    "gpt_small",
    "gpt_medium",
];

/// A parsed request line plus the envelope version it arrived under —
/// the server shapes its response (the `"v"` marker, the stats payload)
/// to match the client's dialect.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Envelope version: 1 (implicit, legacy) or 2 (explicit `"v":2`).
    pub version: u32,
    /// The request carried inside.
    pub request: Request,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Find (or serve) the best strategy for a `(model, cluster)` pair.
    Search(SearchRequest),
    /// Report cache and traffic counters.
    Stats,
    /// Stop accepting work and exit the serve loop.
    Shutdown,
}

/// Parameters of a strategy-search request.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// Zoo model name (see [`KNOWN_MODELS`]).
    pub model: String,
    /// Cluster size in GPUs.
    pub gpus: usize,
    /// Cluster flavour.
    pub cluster: DeviceKind,
    /// MCMC evaluation budget (per initial candidate, as everywhere else
    /// in the optimizer).
    pub evals: u64,
    /// Search seed.
    pub seed: u64,
    /// Parallel search chains.
    pub chains: usize,
    /// Upper bound on the strategy's microbatch count (1 = pipelining
    /// disabled, the default; part of the cache key's budget class).
    pub microbatches: u64,
    /// Whether the search may retune per-layer parameter synchronization
    /// (ZeRO-1 sharding, parameter-server placement; off by default —
    /// part of the cache key's budget class).
    pub param_sync: bool,
    /// Whether the search may toggle per-op activation recomputation
    /// (off by default — part of the cache key's budget class).
    pub recompute: bool,
    /// Skip the cache lookup and force a fresh search (the result still
    /// updates the cache).
    pub refresh: bool,
}

impl SearchRequest {
    /// The defaults a bare `{"model": ...}` request gets.
    pub fn new(model: impl Into<String>) -> Self {
        Self {
            model: model.into(),
            gpus: 4,
            cluster: DeviceKind::P100,
            evals: 2000,
            seed: 42,
            chains: 1,
            microbatches: 1,
            param_sync: false,
            recompute: false,
            refresh: false,
        }
    }
}

fn field_u64(v: &Value, key: &str, max: u64, out: &mut u64) -> Result<(), String> {
    if let Some(f) = v.get_field(key) {
        let n = f
            .as_u64()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))?;
        if n > max {
            return Err(format!("field {key:?} is capped at {max}, got {n}"));
        }
        *out = n;
    }
    Ok(())
}

/// Parses one request line into its envelope.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, unsupported
/// envelope versions, unknown verbs or models, and out-of-range fields.
/// The server ships the message back in-band as an error response.
pub fn parse_envelope(line: &str) -> Result<Envelope, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("malformed request: {e}"))?;
    if v.as_object().is_none() {
        return Err("request must be a JSON object".into());
    }
    let version = match v.get_field("v") {
        None => 1,
        Some(f) => {
            let n = f
                .as_u64()
                .ok_or_else(|| "field \"v\" must be a positive integer".to_string())?;
            if !(1..=u64::from(PROTOCOL_VERSION)).contains(&n) {
                return Err(format!(
                    "unsupported protocol version {n} (this build speaks 1..={PROTOCOL_VERSION})"
                ));
            }
            u32::try_from(n).expect("bounded above")
        }
    };
    let cmd = if version >= 2 {
        // v2 is explicit: the verb is spelled out, no default.
        v.get_field("verb")
            .ok_or_else(|| "a v2 envelope needs a string field \"verb\"".to_string())?
            .as_str()
            .ok_or_else(|| "field \"verb\" must be a string".to_string())?
    } else {
        match v.get_field("cmd") {
            None => "search",
            Some(c) => c
                .as_str()
                .ok_or_else(|| "field \"cmd\" must be a string".to_string())?,
        }
    };
    let request = parse_verb(&v, cmd, version)?;
    Ok(Envelope { version, request })
}

/// Parses one request line, discarding the envelope version (v1-era
/// convenience; [`parse_envelope`] is the full-fidelity entry point).
///
/// # Errors
///
/// Same as [`parse_envelope`].
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_envelope(line).map(|e| e.request)
}

fn parse_verb(v: &Value, cmd: &str, version: u32) -> Result<Request, String> {
    match cmd {
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "search" => {
            let model = v
                .get_field("model")
                .and_then(Value::as_str)
                .ok_or_else(|| "search needs a string field \"model\"".to_string())?;
            if !KNOWN_MODELS.contains(&model) {
                return Err(format!(
                    "unknown model {model:?} (known: {})",
                    KNOWN_MODELS.join(", ")
                ));
            }
            let mut r = SearchRequest::new(model);
            let mut gpus = r.gpus as u64;
            field_u64(v, "gpus", MAX_GPUS as u64, &mut gpus)?;
            if gpus == 0 {
                return Err("field \"gpus\" must be at least 1".into());
            }
            r.gpus = gpus as usize;
            field_u64(v, "evals", MAX_EVALS, &mut r.evals)?;
            if r.evals == 0 {
                return Err("field \"evals\" must be at least 1".into());
            }
            field_u64(v, "seed", u64::MAX, &mut r.seed)?;
            let mut chains = r.chains as u64;
            field_u64(v, "chains", MAX_CHAINS as u64, &mut chains)?;
            if chains == 0 {
                return Err("field \"chains\" must be at least 1".into());
            }
            r.chains = chains as usize;
            field_u64(v, "microbatches", MAX_MICROBATCHES, &mut r.microbatches)?;
            if r.microbatches == 0 {
                return Err("field \"microbatches\" must be at least 1".into());
            }
            if let Some(c) = v.get_field("cluster") {
                let name = c
                    .as_str()
                    .ok_or_else(|| "field \"cluster\" must be a string".to_string())?;
                r.cluster = match name {
                    "p100" => DeviceKind::P100,
                    "k80" => DeviceKind::K80,
                    "a100" => DeviceKind::A100,
                    other => return Err(format!("unknown cluster {other:?} (p100|k80|a100)")),
                };
            }
            if let Some(f) = v.get_field("param_sync") {
                r.param_sync = f
                    .as_bool()
                    .ok_or_else(|| "field \"param_sync\" must be a boolean".to_string())?;
            }
            if let Some(f) = v.get_field("recompute") {
                r.recompute = f
                    .as_bool()
                    .ok_or_else(|| "field \"recompute\" must be a boolean".to_string())?;
            }
            if let Some(f) = v.get_field("refresh") {
                r.refresh = f
                    .as_bool()
                    .ok_or_else(|| "field \"refresh\" must be a boolean".to_string())?;
            }
            Ok(Request::Search(r))
        }
        other if version >= 2 => Err(format!("unknown verb {other:?} (search|stats|shutdown)")),
        other => Err(format!("unknown cmd {other:?} (search|stats|shutdown)")),
    }
}

/// Cap on a single request line's size in bytes: strategy requests are a
/// few hundred bytes, so anything larger is a broken or hostile client
/// that must not grow server buffers without bound.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Renders an in-band error response line (without trailing newline).
pub fn error_response(message: &str) -> String {
    serde_json::to_string(&serde_json::json!({
        "status": "error",
        "error": message,
    }))
    .expect("serialize error response")
}

/// Renders an in-band backpressure response line (without trailing
/// newline): the job queue is full, the client should back off and retry
/// rather than the server growing an unbounded backlog.
pub fn busy_response(message: &str) -> String {
    serde_json::to_string(&serde_json::json!({
        "status": "busy",
        "error": message,
    }))
    .expect("serialize busy response")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_explicit_fields() {
        let r = parse_request(r#"{"model":"rnnlm"}"#).unwrap();
        assert_eq!(r, Request::Search(SearchRequest::new("rnnlm")));

        let r = parse_request(
            r#"{"cmd":"search","model":"nmt","gpus":8,"cluster":"k80","evals":10,"seed":7,"chains":2,"microbatches":4,"param_sync":true,"recompute":true,"refresh":true}"#,
        )
        .unwrap();
        let Request::Search(s) = r else {
            panic!("expected search")
        };
        assert_eq!(s.model, "nmt");
        assert_eq!(s.gpus, 8);
        assert_eq!(s.cluster, DeviceKind::K80);
        assert_eq!(s.evals, 10);
        assert_eq!(s.seed, 7);
        assert_eq!(s.chains, 2);
        assert_eq!(s.microbatches, 4);
        assert!(s.param_sync);
        assert!(s.recompute);
        assert!(s.refresh);

        // Absent: off, matching pre-PR8/PR9 requests.
        let r = parse_request(r#"{"model":"nmt"}"#).unwrap();
        let Request::Search(s) = r else {
            panic!("expected search")
        };
        assert!(!s.param_sync);
        assert!(!s.recompute);
    }

    #[test]
    fn control_commands_parse() {
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"cmd":"search"}"#,
            r#"{"model":"made-up-model"}"#,
            r#"{"model":"rnnlm","gpus":0}"#,
            r#"{"model":"rnnlm","evals":0}"#,
            r#"{"model":"rnnlm","chains":0}"#,
            r#"{"model":"rnnlm","microbatches":0}"#,
            r#"{"model":"rnnlm","microbatches":1000}"#,
            r#"{"model":"rnnlm","gpus":100000}"#,
            r#"{"model":"rnnlm","evals":99999999999}"#,
            r#"{"model":"rnnlm","cluster":"tpu"}"#,
            r#"{"model":"rnnlm","refresh":"yes"}"#,
            r#"{"model":"rnnlm","param_sync":"yes"}"#,
            r#"{"model":"rnnlm","recompute":"yes"}"#,
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":7}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(!err.is_empty(), "no message for {bad:?}");
            let resp = error_response(&err);
            assert!(resp.contains("\"status\""), "unrenderable: {resp}");
        }
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let r = parse_request(r#"{"model":"lenet","future_knob":123}"#).unwrap();
        assert!(matches!(r, Request::Search(_)));
    }

    #[test]
    fn envelopes_without_a_version_marker_are_v1() {
        let e = parse_envelope(r#"{"model":"rnnlm"}"#).unwrap();
        assert_eq!(e.version, 1);
        assert_eq!(e.request, Request::Search(SearchRequest::new("rnnlm")));
        let e = parse_envelope(r#"{"cmd":"stats"}"#).unwrap();
        assert_eq!(e.version, 1);
        assert_eq!(e.request, Request::Stats);
    }

    #[test]
    fn v2_envelopes_use_the_verb_field() {
        let e = parse_envelope(r#"{"v":2,"verb":"search","model":"rnnlm","gpus":8}"#).unwrap();
        assert_eq!(e.version, 2);
        let Request::Search(s) = e.request else {
            panic!("expected search")
        };
        assert_eq!(s.gpus, 8);
        let e = parse_envelope(r#"{"v":2,"verb":"stats"}"#).unwrap();
        assert_eq!(e.request, Request::Stats);
        let e = parse_envelope(r#"{"v":2,"verb":"shutdown"}"#).unwrap();
        assert_eq!(e.request, Request::Shutdown);
    }

    #[test]
    fn v2_envelope_errors_are_in_band() {
        // A v2 envelope must spell its verb: the v1 "cmd"/default-search
        // leniency does not carry over.
        for bad in [
            r#"{"v":2,"model":"rnnlm"}"#,
            r#"{"v":2,"cmd":"stats"}"#,
            r#"{"v":2,"verb":7}"#,
            r#"{"v":2,"verb":"frobnicate"}"#,
        ] {
            let err = parse_envelope(bad).unwrap_err();
            assert!(!err.is_empty(), "no message for {bad:?}");
        }
        // Unknown future versions name the supported range.
        let err = parse_envelope(r#"{"v":3,"verb":"stats"}"#).unwrap_err();
        assert!(err.contains("1..=2"), "{err}");
        let err = parse_envelope(r#"{"v":"two","verb":"stats"}"#).unwrap_err();
        assert!(!err.is_empty());
    }
}
