//! The serving engine: request handling, the bounded worker pool, and the
//! front-ends (batch/oneshot streams, a Unix-domain socket, and a
//! nonblocking TCP listener).
//!
//! # Architecture
//!
//! ```text
//!   stdin line / socket line / TCP line
//!        |  parse (cheap, on the front-end thread)
//!        v
//!   bounded job queue  --->  worker 0..N   (each worker's searches own
//!        |     \                            their Simulators exclusively:
//!        |      `-- full? in-band "busy"    task graph, timeline, undo
//!        v                                  journals are per-thread)
//!   response line, in request order per connection
//!        ^
//!   idle cycles ---> polish daemon: re-search hottest entries, CAS-publish
//! ```
//!
//! Every search answer goes through the [`StrategyStore`] (the sharded,
//! LRU-bounded content-addressed cache):
//!
//! - **hit** — same graph + topology, searched at least as hard: the
//!   stored record is structurally validated
//!   ([`strategy_io::import_structural`]; op names are *not* re-checked,
//!   matching the name-insensitive cache key) and served with **zero**
//!   simulator evaluations;
//! - **warm** — same graph, different topology or smaller budget: the
//!   cached dump is remapped onto the request's topology
//!   ([`strategy_io::remap_onto`]) and seeds a warm search
//!   ([`flexflow_core::optimizer::SearchRequest::run_warm`]), which
//!   typically reaches cold-search quality in a fraction of the
//!   evaluations;
//! - **cold** — full search from the data-parallel and expert seeds.
//!
//! Results always update the store (and its on-disk shard files,
//! atomically), so the daemon converges toward answering its steady-state
//! traffic from memory — and the polish daemon keeps improving the
//! answers it serves most often.

use crate::cache::{composite_class, CacheEntry};
use crate::polish::PolishConfig;
use crate::protocol::{self, Request, SearchRequest};
use crate::store::{CacheBounds, LegacyStore, ShardedStore, StoreLookup, StrategyStore};
use flexflow_baselines::expert;
use flexflow_core::strategy_io::{self, StrategyDump};
use flexflow_core::{Budget, SimConfig, Strategy};
use flexflow_costmodel::MeasuredCostModel;
use flexflow_device::{clusters, DeviceKind, Topology};
use flexflow_opgraph::{graph_signature, zoo, OpGraph};
use serde::Value;
use serde_json::json;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads answering search requests (the pool bound).
    pub workers: usize,
    /// Cache persistence root; `None` keeps the store in memory only.
    /// The sharded store persists to `<path>.shard-NN` files and migrates
    /// a legacy single-file cache at `<path>` on first open (leaving the
    /// legacy file untouched).
    pub cache_path: Option<PathBuf>,
    /// Server-side floor on every request's microbatch cap: requests
    /// asking for less (including the default 1) are raised to this value,
    /// requests asking for more win. `1` (the default) leaves requests
    /// untouched.
    pub default_microbatches: u64,
    /// Cache shards (key-prefix sharded; per-shard locks and files).
    pub shards: usize,
    /// Entry/byte bounds enforced by LRU eviction (unbounded by default,
    /// matching the PR 4 grow-only behavior).
    pub cache_bounds: CacheBounds,
    /// Concurrent TCP connections accepted before new clients get an
    /// in-band refusal.
    pub max_connections: usize,
    /// Idle-connection timeout for the TCP front end in milliseconds: a
    /// connection with no traffic and no pending replies for this long is
    /// closed.
    pub io_timeout_ms: u64,
    /// Use the legacy single-map, single-file store instead of the
    /// sharded one (tests pin the two against each other; production
    /// serving always shards).
    pub legacy_store: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            cache_path: None,
            default_microbatches: 1,
            shards: 8,
            cache_bounds: CacheBounds::unbounded(),
            max_connections: 64,
            io_timeout_ms: 30_000,
            legacy_store: false,
        }
    }
}

/// Latency histogram buckets: bucket `i` counts requests that finished in
/// under `2^i` microseconds, the last bucket is the overflow (≥ ~2 s).
pub const LATENCY_BUCKETS: usize = 22;

/// Traffic counters, updated lock-free by the workers.
#[derive(Debug)]
pub struct ServeStats {
    /// Total requests handled (including errors).
    pub requests: AtomicU64,
    /// Search answers served straight from the cache.
    pub hits: AtomicU64,
    /// Search answers produced by warm-started search.
    pub warm: AtomicU64,
    /// Search answers produced by cold search.
    pub cold: AtomicU64,
    /// Requests answered with an error response.
    pub errors: AtomicU64,
    /// Requests refused in-band because the job queue was full.
    pub busy: AtomicU64,
    /// Simulator evaluations paid answering warm/cold requests.
    pub evals_spent: AtomicU64,
    /// Evaluations a hit would have cost its requester (the cached
    /// record's search effort, served for free).
    pub evals_saved: AtomicU64,
    /// Polish daemon passes completed.
    pub polish_runs: AtomicU64,
    /// Polish passes that published a better (or harder-searched) record.
    pub polish_published: AtomicU64,
    /// Evaluations spent by the polish daemon.
    pub polish_evals: AtomicU64,
    /// Request-latency histogram (see [`LATENCY_BUCKETS`]).
    pub latency_us: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for ServeStats {
    fn default() -> Self {
        Self {
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            warm: AtomicU64::new(0),
            cold: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            evals_spent: AtomicU64::new(0),
            evals_saved: AtomicU64::new(0),
            polish_runs: AtomicU64::new(0),
            polish_published: AtomicU64::new(0),
            polish_evals: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServeStats {
    /// Records one request latency in the histogram.
    pub fn observe_latency(&self, us: u64) {
        let bucket = (64 - us.leading_zeros()) as usize;
        self.latency_us[bucket.min(LATENCY_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    fn latency_counts(&self) -> Vec<u64> {
        self.latency_us
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Approximate quantile from the power-of-two histogram: the upper bound
/// (`2^i` µs) of the bucket where the cumulative count crosses `q`.
fn latency_quantile(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let want = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, c) in counts.iter().enumerate() {
        seen += c;
        if seen >= want {
            return 1u64 << i.min(63);
        }
    }
    1u64 << (counts.len() - 1).min(63)
}

/// The strategy-serving daemon. One instance is shared by all workers and
/// connections; the store shards its locks internally (lookups and
/// inserts are microseconds — searches, the expensive part, run outside
/// every lock).
pub struct Server {
    cfg: ServerConfig,
    store: Box<dyn StrategyStore>,
    stats: ServeStats,
    shutdown: AtomicBool,
    active_searches: AtomicU64,
}

/// How a search answer was produced (the response's `cache` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache, zero evaluations.
    Hit,
    /// Warm-started from a near-miss entry.
    Warm,
    /// Searched from scratch.
    Cold,
}

impl CacheOutcome {
    fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Warm => "warm",
            CacheOutcome::Cold => "cold",
        }
    }
}

pub(crate) fn cluster_name(kind: DeviceKind) -> &'static str {
    match kind {
        DeviceKind::P100 => "p100",
        DeviceKind::K80 => "k80",
        DeviceKind::A100 => "a100",
        DeviceKind::Test => "test",
    }
}

pub(crate) fn cluster_from_name(name: &str) -> Option<DeviceKind> {
    match name {
        "p100" => Some(DeviceKind::P100),
        "k80" => Some(DeviceKind::K80),
        "a100" => Some(DeviceKind::A100),
        "test" => Some(DeviceKind::Test),
        _ => None,
    }
}

/// The outcome of a search request's fast phase (build + classify +
/// store probe): either a complete response — parse/build errors and
/// cache hits — or a plan for the slow, simulator-bound half.
enum SearchFlow {
    Done(Value),
    Search(Box<SearchPlan>),
}

/// Everything the slow half of a search needs, prepared by
/// [`Server::search_flow`] so the worker never repeats the store probe
/// (which would double-count shard counters and LRU touches).
struct SearchPlan {
    req: SearchRequest,
    graph: OpGraph,
    topo: Topology,
    class: u32,
    max_microbatches: u64,
    warm_dump: Option<StrategyDump>,
}

/// Decrements the in-flight search gauge on every exit path.
struct SearchGuard<'a>(&'a AtomicU64);

impl Drop for SearchGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

impl Server {
    /// Creates a server, opening the configured store. A corrupt cache
    /// file is reported on stderr and replaced by an empty store — a
    /// serving daemon must come up even when its disk state is bad.
    pub fn new(cfg: ServerConfig) -> Self {
        let store: Box<dyn StrategyStore> = match (&cfg.cache_path, cfg.legacy_store) {
            (None, false) => Box::new(ShardedStore::in_memory(cfg.shards, cfg.cache_bounds)),
            (None, true) => Box::new(LegacyStore::in_memory()),
            (Some(path), legacy) => {
                let opened: Result<Box<dyn StrategyStore>, String> = if legacy {
                    LegacyStore::open(path).map(|s| Box::new(s) as Box<dyn StrategyStore>)
                } else {
                    ShardedStore::open(path, cfg.shards, cfg.cache_bounds)
                        .map(|s| Box::new(s) as Box<dyn StrategyStore>)
                };
                opened.unwrap_or_else(|e| {
                    eprintln!("flexflow serve: starting with an empty cache: {e}");
                    if legacy {
                        Box::new(LegacyStore::in_memory())
                    } else {
                        Box::new(ShardedStore::in_memory(cfg.shards, cfg.cache_bounds))
                    }
                })
            }
        };
        Self {
            cfg,
            store,
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            active_searches: AtomicU64::new(0),
        }
    }

    /// The live traffic counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The strategy store behind this server.
    pub fn store(&self) -> &dyn StrategyStore {
        self.store.as_ref()
    }

    /// The configuration the server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Number of cached strategies.
    pub fn cache_len(&self) -> usize {
        self.store.len()
    }

    /// Foreground searches currently in flight (the polish daemon only
    /// runs when this is zero — idle cycles, not contended ones).
    pub fn active_searches(&self) -> u64 {
        self.active_searches.load(Ordering::Acquire)
    }

    /// Whether a shutdown request has been accepted.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Handles one raw request line and returns the response line
    /// (without trailing newline). Never panics on untrusted input.
    pub fn handle_line(&self, line: &str) -> String {
        let t0 = Instant::now();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let resp = match protocol::parse_envelope(line) {
            Err(e) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                protocol::error_response(&e)
            }
            Ok(envelope) => {
                let value = match envelope.request {
                    Request::Stats => self.stats_value(),
                    Request::Shutdown => {
                        self.shutdown.store(true, Ordering::Release);
                        // Flush here as well as in the serve loops: the
                        // verb must guarantee durability even for callers
                        // driving handle_line directly.
                        self.store.flush();
                        json!({"status": "ok", "shutting_down": true})
                    }
                    Request::Search(req) => self.handle_search(&req),
                };
                render(envelope.version, value)
            }
        };
        self.stats
            .observe_latency(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        resp
    }

    fn stats_value(&self) -> Value {
        let s = &self.stats;
        let counts = s.latency_counts();
        let spent = s.evals_spent.load(Ordering::Relaxed);
        let saved = s.evals_saved.load(Ordering::Relaxed);
        json!({
            "status": "ok",
            "entries": self.cache_len(),
            "requests": s.requests.load(Ordering::Relaxed),
            "hits": s.hits.load(Ordering::Relaxed),
            "warm": s.warm.load(Ordering::Relaxed),
            "cold": s.cold.load(Ordering::Relaxed),
            "errors": s.errors.load(Ordering::Relaxed),
            "busy": s.busy.load(Ordering::Relaxed),
            "bytes": self.store.bytes(),
            "shards": self.store.shard_stats(),
            "evals_spent": spent,
            "evals_saved": saved,
            // Positive debt: searching has cost more evals than hits have
            // amortized so far; negative: the cache has paid for itself.
            "eval_debt": spent as i64 - saved as i64,
            "latency_counts": counts,
            "latency_p50_us": latency_quantile(&counts, 0.50),
            "latency_p99_us": latency_quantile(&counts, 0.99),
            "polish_runs": s.polish_runs.load(Ordering::Relaxed),
            "polish_published": s.polish_published.load(Ordering::Relaxed),
            "polish_evals": s.polish_evals.load(Ordering::Relaxed),
        })
    }

    /// Answers a search request from the store when possible, otherwise by
    /// (warm-started) search; updates the store with whatever it learned.
    fn handle_search(&self, req: &SearchRequest) -> Value {
        match self.search_flow(req) {
            SearchFlow::Done(value) => value,
            SearchFlow::Search(plan) => self.run_search_plan(*plan),
        }
    }

    /// Phase 1 of a search request — build the workload, classify it, and
    /// probe the store. Completes in microseconds-to-milliseconds (no
    /// simulation), so the TCP readiness loop runs it inline and only
    /// dispatches [`SearchFlow::Search`] plans to the worker pool: cache
    /// hits never pay a queue round-trip.
    fn search_flow(&self, req: &SearchRequest) -> SearchFlow {
        let (graph, topo) = match try_build_workload(req) {
            Ok(pair) => pair,
            Err(e) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                return SearchFlow::Done(json!({"status": "error", "error": e}));
            }
        };
        let graph_sig = graph_signature(&graph);
        let topo_sig = topo.signature();
        // The floor is clamped to the same bound the protocol enforces on
        // requests: values past the cache key's microbatch component
        // would conflate distinct caps into one class.
        let max_microbatches = req
            .microbatches
            .max(self.cfg.default_microbatches)
            .min(protocol::MAX_MICROBATCHES);
        let class = composite_class(req.evals, max_microbatches, req.param_sync, req.recompute);

        // Phase 1 (one shard lock, microseconds): classify the request
        // and clone out whatever the store can contribute. Entries are
        // immutable once stored, so validation happens after the lock is
        // released — hits must not serialize on graph-sized work.
        let mut warm_dump: Option<StrategyDump> = None;
        if !req.refresh {
            match self.store.lookup(graph_sig, topo_sig, class) {
                StoreLookup::Hit { address, entry, .. } => {
                    // Validate before serving: a hash collision or corrupt
                    // record must degrade to a cold search, not a panic or
                    // a wrong answer. Validation is *structural* (shape,
                    // device range, config legality) — the cache key is
                    // the name-insensitive graph signature, so op names
                    // must not be re-checked here.
                    let record = entry.record;
                    if (strategy_io::MIN_FORMAT_VERSION..=strategy_io::FORMAT_VERSION)
                        .contains(&record.version)
                        && strategy_io::import_structural(&graph, &topo, &record.dump).is_ok()
                    {
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .evals_saved
                            .fetch_add(record.evals, Ordering::Relaxed);
                        return SearchFlow::Done(self.search_response(
                            req,
                            CacheOutcome::Hit,
                            class,
                            record.cost_us,
                            0,
                            record.evals,
                            &record.dump,
                        ));
                    }
                    // Evict the invalid entry: `insert`'s lower-cost-wins
                    // rule would otherwise let a corrupt record with an
                    // optimistic cost pin this address and force a cold
                    // search on every future request.
                    self.store.remove(&address);
                }
                StoreLookup::Warm(entry) => warm_dump = Some(entry.record.dump.clone()),
                StoreLookup::Miss => {}
            }
        }
        SearchFlow::Search(Box::new(SearchPlan {
            req: req.clone(),
            graph,
            topo,
            class,
            max_microbatches,
            warm_dump,
        }))
    }

    /// Phases 2 and 3 of a search request: run the (warm-started) search
    /// and teach the store. This is the seconds-long half; it always runs
    /// on a worker thread.
    fn run_search_plan(&self, plan: SearchPlan) -> Value {
        let SearchPlan {
            req,
            graph,
            topo,
            class,
            max_microbatches,
            warm_dump,
        } = plan;
        let mut outcome = CacheOutcome::Cold;

        // Phase 2 (no lock): the actual search. Simulators live and die
        // inside this call, owned by the calling worker thread.
        self.active_searches.fetch_add(1, Ordering::Release);
        let _guard = SearchGuard(&self.active_searches);
        let cost = MeasuredCostModel::paper_default();
        let search = flexflow_core::SearchRequest::new(req.seed)
            .chains(req.chains)
            .max_microbatches(max_microbatches)
            .param_sync(req.param_sync)
            .recompute(req.recompute);
        let budget = Budget::evaluations(req.evals);
        let warm_seed =
            warm_dump.and_then(|dump| strategy_io::remap_onto(&graph, &topo, &dump).ok());
        let result = match warm_seed {
            Some(seed) => {
                outcome = CacheOutcome::Warm;
                search.run_warm(&graph, &topo, &cost, seed, budget, SimConfig::default())
            }
            None => {
                let initials = [
                    Strategy::data_parallel(&graph, &topo),
                    expert::strategy(&graph, &topo),
                ];
                search.run(
                    &graph,
                    &topo,
                    &cost,
                    &initials,
                    budget,
                    SimConfig::default(),
                )
            }
        };
        match outcome {
            CacheOutcome::Warm => self.stats.warm.fetch_add(1, Ordering::Relaxed),
            _ => self.stats.cold.fetch_add(1, Ordering::Relaxed),
        };
        self.stats
            .evals_spent
            .fetch_add(result.evals, Ordering::Relaxed);

        // Phase 3: teach the store (it snapshots under its shard lock and
        // writes outside it, so concurrent hit lookups never stall on
        // I/O).
        let record = strategy_io::export_record(
            &graph,
            &topo,
            &result.best,
            result.best_cost_us,
            result.evals,
        );
        let dump = record.dump.clone();
        let entry = CacheEntry {
            budget_class: class,
            model: req.model.clone(),
            gpus: req.gpus,
            cluster: cluster_name(req.cluster).to_string(),
            record,
        };
        self.store.insert(entry);

        self.search_response(
            &req,
            outcome,
            class,
            result.best_cost_us,
            result.evals,
            result.evals,
            &dump,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn search_response(
        &self,
        req: &SearchRequest,
        outcome: CacheOutcome,
        class: u32,
        cost_us: f64,
        evals: u64,
        cached_evals: u64,
        dump: &StrategyDump,
    ) -> Value {
        json!({
            "status": "ok",
            "cache": outcome.as_str(),
            "model": req.model,
            "gpus": req.gpus,
            "cluster": cluster_name(req.cluster),
            "budget_class": class,
            "microbatches": dump.microbatches,
            "param_sync": req.param_sync,
            "recompute": req.recompute,
            "cost_us": cost_us,
            "evals": evals,
            "cached_evals": cached_evals,
            "strategy": dump,
        })
    }

    /// Batch ("oneshot") mode: reads every request line from `input`,
    /// fans the parsed jobs across the worker pool, and writes one
    /// response line per request **in input order**. Used by
    /// `flexflow serve --oneshot`, the CLI smoke tests, and the
    /// `serve_throughput` benchmark.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading `input` or writing `output`.
    pub fn run_batch(&self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        let lines: Vec<String> = input.lines().collect::<Result<_, _>>()?;
        let responses = self.handle_batch(&lines);
        for r in responses {
            writeln!(output, "{r}")?;
        }
        output.flush()?;
        self.store.flush();
        Ok(())
    }

    /// The worker-pool core of [`Server::run_batch`]: answers each line,
    /// preserving order, with at most `cfg.workers` searches in flight.
    pub fn handle_batch(&self, lines: &[String]) -> Vec<String> {
        let n = lines.len();
        let mut responses: Vec<Option<String>> = vec![None; n];
        if n == 0 {
            return Vec::new();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers.max(1).min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let resp = self.handle_line(&lines[i]);
                    results
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((i, resp));
                });
            }
        });
        for (i, r) in results.into_inner().unwrap_or_else(|e| e.into_inner()) {
            responses[i] = Some(r);
        }
        responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    /// Socket mode: listens on a Unix-domain socket, one thread per
    /// connection, searches dispatched through a bounded job queue onto
    /// the worker pool. Responses stream back per connection in request
    /// order. Returns when a client sends `{"cmd":"shutdown"}`; idle
    /// connections notice the flag within half a second (reads are
    /// timeout-based) and never block the shutdown. In-flight jobs drain
    /// and every dirty cache shard is flushed before the call returns.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/accept errors, and refuses to replace a
    /// path that exists but is not a socket.
    #[cfg(unix)]
    pub fn run_socket(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::os::unix::net::{UnixListener, UnixStream};

        // A stale socket file from a crashed daemon would fail the bind —
        // but only ever delete actual sockets, not whatever file a typo'd
        // --socket points at.
        if path.exists() {
            use std::os::unix::fs::FileTypeExt;
            if std::fs::symlink_metadata(path)?.file_type().is_socket() {
                std::fs::remove_file(path)?;
            } else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!("{} exists and is not a socket", path.display()),
                ));
            }
        }
        let listener = UnixListener::bind(path)?;

        struct Job {
            line: String,
            reply: mpsc::Sender<String>,
        }
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(self.cfg.workers.max(1) * 4);
        let job_rx = Mutex::new(job_rx);

        std::thread::scope(|s| {
            // The bounded pool: workers block on the queue, searches never
            // oversubscribe beyond `cfg.workers`.
            for _ in 0..self.cfg.workers.max(1) {
                s.spawn(|| {
                    loop {
                        let job = {
                            let rx = job_rx.lock().unwrap_or_else(|e| e.into_inner());
                            rx.recv()
                        };
                        let Ok(job) = job else { break };
                        // A hung-up client is not a server error.
                        let _ = job.reply.send(self.handle_line(&job.line));
                    }
                });
            }

            let mut result = Ok(());
            for stream in listener.incoming() {
                if self.shutting_down() {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        // Raise the flag so live connection threads drain
                        // on their next read timeout — otherwise the
                        // scope join below would wedge on them and the
                        // error would never surface.
                        self.shutdown.store(true, Ordering::Release);
                        result = Err(e);
                        break;
                    }
                };
                let job_tx = job_tx.clone();
                let sock_path = path.to_path_buf();
                s.spawn(move || {
                    // Timeout-based reads: an idle client must not pin this
                    // thread (and through it the whole scope) past a
                    // shutdown — on every timeout the flag is re-checked.
                    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
                    let mut reader = std::io::BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    });
                    let mut writer = std::io::BufWriter::new(stream);
                    let mut line = String::new();
                    loop {
                        match reader.read_line(&mut line) {
                            Ok(0) => break, // EOF: client hung up
                            Ok(_) => {
                                if !line.trim().is_empty() {
                                    let (reply_tx, reply_rx) = mpsc::channel();
                                    let job = Job {
                                        line: std::mem::take(&mut line),
                                        reply: reply_tx,
                                    };
                                    if job_tx.send(job).is_err() {
                                        break;
                                    }
                                    let Ok(resp) = reply_rx.recv() else { break };
                                    if writeln!(writer, "{resp}")
                                        .and_then(|()| writer.flush())
                                        .is_err()
                                    {
                                        break;
                                    }
                                }
                                line.clear();
                                if self.shutting_down() {
                                    // Poke the accept loop awake so it
                                    // observes the flag and exits.
                                    let _ = UnixStream::connect(&sock_path);
                                    break;
                                }
                            }
                            // Timed out with no (complete) line: `line`
                            // keeps any partial read and the next
                            // read_line call appends to it.
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                                ) =>
                            {
                                if self.shutting_down() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
            // Closing the sender drains and stops the workers.
            drop(job_tx);
            result
        })?;
        // Every queued job has been answered by now (the scope joins the
        // workers); make the results durable before reporting success.
        self.store.flush();
        std::fs::remove_file(path).ok();
        Ok(())
    }

    /// Socket mode is Unix-only (Unix-domain sockets); this stub keeps
    /// the `flexflow` binary compiling on other targets, where
    /// `--oneshot` and `--tcp` remain available.
    ///
    /// # Errors
    ///
    /// Always returns [`std::io::ErrorKind::Unsupported`].
    #[cfg(not(unix))]
    pub fn run_socket(&self, _path: &std::path::Path) -> std::io::Result<()> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "socket mode needs Unix domain sockets; use --oneshot or --tcp on this platform",
        ))
    }

    /// TCP mode: binds `addr` (e.g. `127.0.0.1:7170`) and serves it with
    /// [`Server::serve_listener`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors and fatal accept/poll errors.
    pub fn run_tcp(&self, addr: &str) -> std::io::Result<()> {
        let listener = std::net::TcpListener::bind(addr)?;
        self.serve_listener(listener)
    }

    /// The nonblocking TCP front end: a single readiness loop over
    /// nonblocking sockets multiplexes every connection — accept, read,
    /// line-extract, enqueue, reply-collect, write — while the bounded
    /// worker pool runs the searches. No thread-per-connection: the
    /// accept loop enforces [`ServerConfig::max_connections`] (excess
    /// clients get one in-band error line), a full job queue produces
    /// in-band `busy` responses instead of unbounded buffering, idle
    /// connections time out after [`ServerConfig::io_timeout_ms`], and
    /// per-connection responses keep request order. On shutdown the loop
    /// stops reading, drains every in-flight job, writes the pending
    /// replies, and flushes the store before returning.
    ///
    /// # Errors
    ///
    /// Propagates fatal accept/poll errors (per-connection I/O errors
    /// just close that connection).
    pub fn serve_listener(&self, listener: std::net::TcpListener) -> std::io::Result<()> {
        use std::collections::VecDeque;
        use std::io::Read;

        listener.set_nonblocking(true)?;

        enum Pending {
            Reply(mpsc::Receiver<String>),
            Ready(String),
        }
        struct Conn {
            stream: std::net::TcpStream,
            inbuf: Vec<u8>,
            outbuf: Vec<u8>,
            pending: VecDeque<Pending>,
            last_activity: Instant,
            eof: bool,
            dead: bool,
        }

        struct Job {
            plan: Box<SearchPlan>,
            version: u32,
            t0: Instant,
            reply: mpsc::Sender<String>,
        }
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(self.cfg.workers.max(1) * 4);
        let job_rx = Mutex::new(job_rx);
        let io_timeout = Duration::from_millis(self.cfg.io_timeout_ms.max(1));

        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers.max(1) {
                s.spawn(|| loop {
                    let job = {
                        let rx = job_rx.lock().unwrap_or_else(|e| e.into_inner());
                        rx.recv()
                    };
                    let Ok(job) = job else { break };
                    let Job { plan, version, t0, reply } = job;
                    let resp = render(version, self.run_search_plan(*plan));
                    self.stats.observe_latency(
                        u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
                    );
                    let _ = reply.send(resp);
                });
            }

            let mut conns: Vec<Conn> = Vec::new();
            let mut result = Ok(());
            let mut idle_passes = 0u32;
            'serve: loop {
                let mut progressed = false;

                // Accept — up to the connection limit; beyond it clients
                // get one in-band refusal line instead of a silent drop
                // or an unbounded connection table.
                loop {
                    match listener.accept() {
                        Ok((stream, _addr)) => {
                            progressed = true;
                            if self.shutting_down() {
                                continue; // closing; the stream drops
                            }
                            if conns.len() >= self.cfg.max_connections.max(1) {
                                self.stats.busy.fetch_add(1, Ordering::Relaxed);
                                let mut stream = stream;
                                let _ = stream.set_nodelay(true);
                                let _ = stream.set_nonblocking(false);
                                let _ = writeln!(
                                    stream,
                                    "{}",
                                    protocol::busy_response("connection limit reached, retry later")
                                );
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            // Line-sized writes must not sit in Nagle's
                            // buffer waiting for an ACK.
                            let _ = stream.set_nodelay(true);
                            conns.push(Conn {
                                stream,
                                inbuf: Vec::new(),
                                outbuf: Vec::new(),
                                pending: VecDeque::new(),
                                last_activity: Instant::now(),
                                eof: false,
                                dead: false,
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            self.shutdown.store(true, Ordering::Release);
                            result = Err(e);
                            break 'serve;
                        }
                    }
                }

                // Read and enqueue complete lines, per connection.
                let mut buf = [0u8; 4096];
                for conn in &mut conns {
                    if conn.eof || conn.dead {
                        continue;
                    }
                    loop {
                        match conn.stream.read(&mut buf) {
                            Ok(0) => {
                                conn.eof = true;
                                break;
                            }
                            Ok(n) => {
                                progressed = true;
                                conn.last_activity = Instant::now();
                                conn.inbuf.extend_from_slice(&buf[..n]);
                                if conn.inbuf.len() > protocol::MAX_REQUEST_BYTES {
                                    conn.pending.push_back(Pending::Ready(
                                        protocol::error_response("request line too long"),
                                    ));
                                    conn.eof = true;
                                    break;
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                conn.dead = true;
                                break;
                            }
                        }
                    }
                    while let Some(pos) = conn.inbuf.iter().position(|&b| b == b'\n') {
                        let raw: Vec<u8> = conn.inbuf.drain(..=pos).collect();
                        let line = String::from_utf8_lossy(&raw[..raw.len() - 1])
                            .trim()
                            .to_string();
                        if line.is_empty() {
                            continue;
                        }
                        progressed = true;
                        if self.shutting_down() {
                            conn.pending.push_back(Pending::Ready(protocol::error_response(
                                "server is shutting down",
                            )));
                            continue;
                        }
                        // Fast path, inline on the readiness loop: parse
                        // errors, stats, shutdown and cache hits complete
                        // in microseconds — only plans that actually need
                        // a simulator-bound search ride the job queue.
                        let t0 = Instant::now();
                        self.stats.requests.fetch_add(1, Ordering::Relaxed);
                        let slow = match protocol::parse_envelope(&line) {
                            Err(e) => {
                                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                                Err(protocol::error_response(&e))
                            }
                            Ok(envelope) => {
                                let version = envelope.version;
                                match envelope.request {
                                    Request::Stats => {
                                        Err(render(version, self.stats_value()))
                                    }
                                    Request::Shutdown => {
                                        self.shutdown.store(true, Ordering::Release);
                                        self.store.flush();
                                        Err(render(
                                            version,
                                            json!({"status": "ok", "shutting_down": true}),
                                        ))
                                    }
                                    Request::Search(req) => match self.search_flow(&req) {
                                        SearchFlow::Done(value) => Err(render(version, value)),
                                        SearchFlow::Search(plan) => Ok((plan, version)),
                                    },
                                }
                            }
                        };
                        let (plan, version) = match slow {
                            Err(resp) => {
                                self.stats.observe_latency(
                                    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
                                );
                                conn.pending.push_back(Pending::Ready(resp));
                                continue;
                            }
                            Ok(pair) => pair,
                        };
                        let (reply_tx, reply_rx) = mpsc::channel();
                        match job_tx.try_send(Job {
                            plan,
                            version,
                            t0,
                            reply: reply_tx,
                        }) {
                            Ok(()) => conn.pending.push_back(Pending::Reply(reply_rx)),
                            Err(mpsc::TrySendError::Full(_)) => {
                                // Backpressure: answer in-band instead of
                                // growing an unbounded backlog. The reply
                                // still rides the ordered pending queue.
                                self.stats.busy.fetch_add(1, Ordering::Relaxed);
                                conn.pending.push_back(Pending::Ready(protocol::busy_response(
                                    "job queue full, retry later",
                                )));
                            }
                            Err(mpsc::TrySendError::Disconnected(_)) => {
                                conn.dead = true;
                                break;
                            }
                        }
                    }
                }

                // Collect finished replies in request order and write.
                for conn in &mut conns {
                    if conn.dead {
                        continue;
                    }
                    loop {
                        let ready = match conn.pending.front_mut() {
                            None => None,
                            Some(Pending::Ready(_)) => match conn.pending.pop_front() {
                                Some(Pending::Ready(r)) => Some(r),
                                _ => unreachable!("front checked above"),
                            },
                            Some(Pending::Reply(rx)) => match rx.try_recv() {
                                Ok(resp) => {
                                    conn.pending.pop_front();
                                    Some(resp)
                                }
                                Err(mpsc::TryRecvError::Empty) => None,
                                Err(mpsc::TryRecvError::Disconnected) => {
                                    conn.pending.pop_front();
                                    Some(protocol::error_response("worker dropped the request"))
                                }
                            },
                        };
                        let Some(resp) = ready else { break };
                        progressed = true;
                        conn.last_activity = Instant::now();
                        conn.outbuf.extend_from_slice(resp.as_bytes());
                        conn.outbuf.push(b'\n');
                    }
                    while !conn.outbuf.is_empty() {
                        match conn.stream.write(&conn.outbuf) {
                            Ok(0) => {
                                conn.dead = true;
                                break;
                            }
                            Ok(n) => {
                                progressed = true;
                                conn.last_activity = Instant::now();
                                conn.outbuf.drain(..n);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                conn.dead = true;
                                break;
                            }
                        }
                    }
                }

                // Cull connections that are finished or have idled out.
                conns.retain(|c| {
                    if c.dead {
                        return false;
                    }
                    let drained = c.pending.is_empty() && c.outbuf.is_empty();
                    if c.eof && drained {
                        return false;
                    }
                    // Read/write timeout: no traffic and nothing owed for
                    // the whole window — close the connection.
                    !(drained && c.last_activity.elapsed() > io_timeout)
                });

                if self.shutting_down()
                    && conns
                        .iter()
                        .all(|c| c.pending.is_empty() && c.outbuf.is_empty())
                {
                    break;
                }
                if progressed {
                    idle_passes = 0;
                } else {
                    idle_passes += 1;
                    // Active conversations turn around in microseconds, so
                    // spin-yield through short gaps; a real lull (~500
                    // empty passes) downgrades to millisecond sleeps.
                    if idle_passes < 500 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            drop(job_tx);
            result
        })?;
        // The scope joined the workers, so every accepted job has
        // finished; flush before reporting a clean exit.
        self.store.flush();
        Ok(())
    }
}

/// Renders a response value to its wire line, stamping the `"v"` marker
/// on v2 envelopes (v1 responses stay byte-identical to the PR 4 dialect,
/// which had no version field).
fn render(version: u32, value: Value) -> String {
    let value = if version >= 2 {
        match value {
            Value::Object(mut fields) => {
                fields.insert(0, ("v".to_string(), json!(2)));
                Value::Object(fields)
            }
            other => other,
        }
    } else {
        value
    };
    serde_json::to_string(&value).expect("serialize response")
}

/// Builds the `(graph, topology)` pair a search request names — shared by
/// the server and the benchmarks so cache keys line up.
///
/// A100 requests build hierarchical NVSwitch-island clusters (paper
/// clusters only cover the paper's hardware); P100/K80 requests keep the
/// flat Fig. 6 builders so existing cache keys are untouched.
///
/// # Errors
///
/// Returns a message for cluster shapes that cannot be built (e.g. an
/// A100 count that is not a whole number of islands) — the server answers
/// these in-band instead of panicking a worker.
pub fn try_build_workload(req: &SearchRequest) -> Result<(OpGraph, Topology), String> {
    let batch = if req.model == "alexnet" { 256 } else { 64 };
    let topo = match req.cluster {
        DeviceKind::A100 => {
            let width = clusters::island_width(req.cluster);
            clusters::preset(&format!("a100x{}-ib", req.gpus))
                .map_err(|e| format!("{e} (gpus must be a multiple of {width})"))?
        }
        _ => clusters::paper_cluster(req.cluster, req.gpus),
    };
    Ok((zoo::by_name(&req.model, batch), topo))
}

/// Infallible [`try_build_workload`] for callers whose requests are
/// pre-validated (benchmarks, tests).
///
/// # Panics
///
/// Panics where [`try_build_workload`] errors.
pub fn build_workload(req: &SearchRequest) -> (OpGraph, Topology) {
    try_build_workload(req).unwrap_or_else(|e| panic!("{e}"))
}

/// Convenience: extracts a named top-level field from a response line
/// (test/bench helper — responses are flat JSON objects).
pub fn response_field(line: &str, key: &str) -> Option<Value> {
    let v: Value = serde_json::from_str(line).ok()?;
    v.get_field(key).cloned()
}

/// Which front end a [`ServerHandle`] runs.
#[derive(Debug, Clone)]
enum Front {
    /// No serve loop configured: `handle_line`/`run_batch` only.
    None,
    /// TCP listener address (`HOST:PORT`).
    Tcp(String),
    /// Unix-domain socket path.
    Socket(PathBuf),
}

/// Builder for the assembled serving product: engine + store + front end
/// + polish daemon. See [`ServerHandle::builder`].
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    cfg: ServerConfig,
    front: Front,
    polish: Option<PolishConfig>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        Self {
            cfg: ServerConfig::default(),
            front: Front::None,
            polish: None,
        }
    }
}

impl ServerBuilder {
    /// Sets the worker-pool size.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Sets the cache persistence root.
    #[must_use]
    pub fn cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.cache_path = Some(path.into());
        self
    }

    /// Sets the LRU bounds the store enforces.
    #[must_use]
    pub fn cache_bounds(mut self, bounds: CacheBounds) -> Self {
        self.cfg.cache_bounds = bounds;
        self
    }

    /// Sets the shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Sets the server-side microbatch floor.
    #[must_use]
    pub fn default_microbatches(mut self, floor: u64) -> Self {
        self.cfg.default_microbatches = floor;
        self
    }

    /// Sets the TCP connection limit.
    #[must_use]
    pub fn max_connections(mut self, conns: usize) -> Self {
        self.cfg.max_connections = conns;
        self
    }

    /// Sets the idle-connection timeout in milliseconds.
    #[must_use]
    pub fn io_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.io_timeout_ms = ms;
        self
    }

    /// Uses the legacy single-map store instead of the sharded one.
    #[must_use]
    pub fn legacy_store(mut self, legacy: bool) -> Self {
        self.cfg.legacy_store = legacy;
        self
    }

    /// Serves a TCP listener at `addr` when [`ServerHandle::run`] is
    /// called.
    #[must_use]
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.front = Front::Tcp(addr.into());
        self
    }

    /// Serves a Unix-domain socket at `path` when [`ServerHandle::run`]
    /// is called.
    #[must_use]
    pub fn socket(mut self, path: impl Into<PathBuf>) -> Self {
        self.front = Front::Socket(path.into());
        self
    }

    /// Enables the background polish daemon with the given config.
    #[must_use]
    pub fn polish(mut self, cfg: PolishConfig) -> Self {
        self.polish = Some(cfg);
        self
    }

    /// Builds the server and starts the polish daemon (if enabled).
    pub fn build(self) -> ServerHandle {
        let server = Arc::new(Server::new(self.cfg));
        let polish_stop = Arc::new(AtomicBool::new(false));
        let polish_thread = self.polish.map(|cfg| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&polish_stop);
            std::thread::spawn(move || crate::polish::run_daemon(&server, &cfg, &stop))
        });
        ServerHandle {
            server,
            front: self.front,
            polish_stop,
            polish_thread,
        }
    }
}

/// The assembled serving product: a [`Server`] plus its configured front
/// end and (optionally) the background polish daemon. Dropping the handle
/// stops the daemon; the engine itself is reachable via
/// [`ServerHandle::server`] and the delegates below.
pub struct ServerHandle {
    server: Arc<Server>,
    front: Front,
    polish_stop: Arc<AtomicBool>,
    polish_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Starts a builder with the defaults of [`ServerConfig`].
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// The engine behind this handle.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Delegates to [`Server::handle_line`].
    pub fn handle_line(&self, line: &str) -> String {
        self.server.handle_line(line)
    }

    /// Delegates to [`Server::run_batch`].
    ///
    /// # Errors
    ///
    /// See [`Server::run_batch`].
    pub fn run_batch(&self, input: impl BufRead, output: impl Write) -> std::io::Result<()> {
        self.server.run_batch(input, output)
    }

    /// Runs the configured front end (TCP or Unix socket) until a client
    /// sends `shutdown`, then stops the polish daemon.
    ///
    /// # Errors
    ///
    /// Propagates the serve loop's errors; a handle built without
    /// [`ServerBuilder::tcp`] or [`ServerBuilder::socket`] reports
    /// [`std::io::ErrorKind::Unsupported`].
    pub fn run(&mut self) -> std::io::Result<()> {
        let result = match &self.front {
            Front::Tcp(addr) => self.server.run_tcp(addr),
            Front::Socket(path) => self.server.run_socket(path),
            Front::None => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "no front end configured; use run_batch or handle_line",
            )),
        };
        self.stop_polish();
        result
    }

    /// Stops and joins the polish daemon (idempotent; also runs on drop).
    pub fn stop_polish(&mut self) {
        self.polish_stop.store(true, Ordering::Release);
        if let Some(thread) = self.polish_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_polish();
    }
}
