//! The serving engine: request handling, the bounded worker pool, and the
//! two front-ends (batch/oneshot streams and a Unix-domain socket).
//!
//! # Architecture
//!
//! ```text
//!   stdin line / socket line
//!        |  parse (cheap, on the connection thread)
//!        v
//!   bounded job queue  --->  worker 0..N   (each worker's searches own
//!        |                                  their Simulators exclusively:
//!        |                                  task graph, timeline, undo
//!        v                                  journals are per-thread)
//!   response line, in request order per connection
//! ```
//!
//! Every search answer goes through the content-addressed
//! [`StrategyCache`]:
//!
//! - **hit** — same graph + topology, searched at least as hard: the
//!   stored record is structurally validated
//!   ([`strategy_io::import_structural`]; op names are *not* re-checked,
//!   matching the name-insensitive cache key) and served with **zero**
//!   simulator evaluations;
//! - **warm** — same graph, different topology or smaller budget: the
//!   cached dump is remapped onto the request's topology
//!   ([`strategy_io::remap_onto`]) and seeds a warm search
//!   ([`flexflow_core::optimizer::SearchRequest::run_warm`]), which
//!   typically reaches cold-search quality in a fraction of the
//!   evaluations;
//! - **cold** — full search from the data-parallel and expert seeds.
//!
//! Results always update the cache (and its on-disk file, atomically), so
//! the daemon converges toward answering its steady-state traffic from
//! memory.

use crate::cache::{composite_class, CacheEntry, Lookup, StrategyCache};
use crate::protocol::{self, Request, SearchRequest};
use flexflow_baselines::expert;
use flexflow_core::strategy_io::{self, StrategyDump, StrategyRecord};
use flexflow_core::{Budget, SimConfig, Strategy};
use flexflow_costmodel::MeasuredCostModel;
use flexflow_device::{clusters, DeviceKind, Topology};
use flexflow_opgraph::{graph_signature, zoo, OpGraph};
use serde::Value;
use serde_json::json;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads answering search requests (the pool bound).
    pub workers: usize,
    /// Cache persistence file; `None` keeps the cache in memory only.
    pub cache_path: Option<PathBuf>,
    /// Server-side floor on every request's microbatch cap: requests
    /// asking for less (including the default 1) are raised to this value,
    /// requests asking for more win. `1` (the default) leaves requests
    /// untouched.
    pub default_microbatches: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            cache_path: None,
            default_microbatches: 1,
        }
    }
}

/// Traffic counters, updated lock-free by the workers.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Total requests handled (including errors).
    pub requests: AtomicU64,
    /// Search answers served straight from the cache.
    pub hits: AtomicU64,
    /// Search answers produced by warm-started search.
    pub warm: AtomicU64,
    /// Search answers produced by cold search.
    pub cold: AtomicU64,
    /// Requests answered with an error response.
    pub errors: AtomicU64,
}

/// The strategy-serving daemon. One instance is shared by all workers and
/// connections; the cache sits behind a mutex (lookups and inserts are
/// microseconds — searches, the expensive part, run outside the lock).
pub struct Server {
    cfg: ServerConfig,
    cache: Mutex<StrategyCache>,
    stats: ServeStats,
    shutdown: AtomicBool,
}

/// How a search answer was produced (the response's `cache` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache, zero evaluations.
    Hit,
    /// Warm-started from a near-miss entry.
    Warm,
    /// Searched from scratch.
    Cold,
}

impl CacheOutcome {
    fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Warm => "warm",
            CacheOutcome::Cold => "cold",
        }
    }
}

fn cluster_name(kind: DeviceKind) -> &'static str {
    match kind {
        DeviceKind::P100 => "p100",
        DeviceKind::K80 => "k80",
        DeviceKind::A100 => "a100",
        DeviceKind::Test => "test",
    }
}

impl Server {
    /// Creates a server, loading the cache file if configured. A corrupt
    /// cache file is reported on stderr and replaced by an empty cache —
    /// a serving daemon must come up even when its disk state is bad.
    pub fn new(cfg: ServerConfig) -> Self {
        let cache = match &cfg.cache_path {
            None => StrategyCache::new(),
            Some(path) => StrategyCache::load(path).unwrap_or_else(|e| {
                eprintln!("flexflow serve: starting with an empty cache: {e}");
                StrategyCache::new()
            }),
        };
        Self {
            cfg,
            cache: Mutex::new(cache),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The live traffic counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Number of cached strategies.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether a shutdown request has been accepted.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Handles one raw request line and returns the response line
    /// (without trailing newline). Never panics on untrusted input.
    pub fn handle_line(&self, line: &str) -> String {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        match protocol::parse_request(line) {
            Err(e) => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                protocol::error_response(&e)
            }
            Ok(Request::Stats) => self.stats_response(),
            Ok(Request::Shutdown) => {
                self.shutdown.store(true, Ordering::Release);
                serde_json::to_string(&json!({"status": "ok", "shutting_down": true}))
                    .expect("serialize response")
            }
            Ok(Request::Search(req)) => self.handle_search(&req),
        }
    }

    fn stats_response(&self) -> String {
        let s = &self.stats;
        serde_json::to_string(&json!({
            "status": "ok",
            "entries": self.cache_len(),
            "requests": s.requests.load(Ordering::Relaxed),
            "hits": s.hits.load(Ordering::Relaxed),
            "warm": s.warm.load(Ordering::Relaxed),
            "cold": s.cold.load(Ordering::Relaxed),
            "errors": s.errors.load(Ordering::Relaxed),
        }))
        .expect("serialize response")
    }

    /// Answers a search request from the cache when possible, otherwise by
    /// (warm-started) search; updates the cache with whatever it learned.
    fn handle_search(&self, req: &SearchRequest) -> String {
        let (graph, topo) = build_workload(req);
        let graph_sig = graph_signature(&graph);
        let topo_sig = topo.signature();
        // The floor is clamped to the same bound the protocol enforces on
        // requests: values past the cache key's microbatch component
        // would conflate distinct caps into one class.
        let max_microbatches = req
            .microbatches
            .max(self.cfg.default_microbatches)
            .min(protocol::MAX_MICROBATCHES);
        let class = composite_class(req.evals, max_microbatches, req.param_sync, req.recompute);

        // Phase 1 (under the lock, microseconds): classify the request and
        // clone out whatever the cache can contribute. Entries are
        // immutable once stored, so validation happens after the lock is
        // released — hits must not serialize on graph-sized work.
        let mut outcome = CacheOutcome::Cold;
        let mut warm_dump: Option<StrategyDump> = None;
        let mut hit: Option<(String, StrategyRecord)> = None;
        if !req.refresh {
            let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            match cache.lookup(graph_sig, topo_sig, class) {
                Lookup::Hit(entry) => {
                    hit = entry.key().map(|k| (k.address(), entry.record.clone()));
                }
                Lookup::Warm(entry) => warm_dump = Some(entry.record.dump.clone()),
                Lookup::Miss => {}
            }
        }

        if let Some((address, record)) = hit {
            // Validate before serving: a hash collision or corrupt record
            // must degrade to a cold search, not a panic or a wrong
            // answer. Validation is *structural* (shape, device range,
            // config legality) — the cache key is the name-insensitive
            // graph signature, so op names must not be re-checked here.
            if (strategy_io::MIN_FORMAT_VERSION..=strategy_io::FORMAT_VERSION)
                .contains(&record.version)
                && strategy_io::import_structural(&graph, &topo, &record.dump).is_ok()
            {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return self.search_response(
                    req,
                    CacheOutcome::Hit,
                    class,
                    record.cost_us,
                    0,
                    record.evals,
                    &record.dump,
                );
            }
            // Evict the invalid entry: `insert`'s lower-cost-wins rule
            // would otherwise let a corrupt record with an optimistic
            // cost pin this address and force a cold search on every
            // future request.
            let snapshot = {
                let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
                (cache.remove(&address).is_some() && self.cfg.cache_path.is_some())
                    .then(|| cache.snapshot_json())
            };
            self.persist(snapshot);
        }

        // Phase 2 (no lock): the actual search. Simulators live and die
        // inside this call, owned by the calling worker thread.
        let cost = MeasuredCostModel::paper_default();
        let search = flexflow_core::SearchRequest::new(req.seed)
            .chains(req.chains)
            .max_microbatches(max_microbatches)
            .param_sync(req.param_sync)
            .recompute(req.recompute);
        let budget = Budget::evaluations(req.evals);
        let warm_seed =
            warm_dump.and_then(|dump| strategy_io::remap_onto(&graph, &topo, &dump).ok());
        let result = match warm_seed {
            Some(seed) => {
                outcome = CacheOutcome::Warm;
                search.run_warm(&graph, &topo, &cost, seed, budget, SimConfig::default())
            }
            None => {
                let initials = [
                    Strategy::data_parallel(&graph, &topo),
                    expert::strategy(&graph, &topo),
                ];
                search.run(
                    &graph,
                    &topo,
                    &cost,
                    &initials,
                    budget,
                    SimConfig::default(),
                )
            }
        };
        match outcome {
            CacheOutcome::Warm => self.stats.warm.fetch_add(1, Ordering::Relaxed),
            _ => self.stats.cold.fetch_add(1, Ordering::Relaxed),
        };

        // Phase 3 (under the lock again): teach the cache, persist.
        let record = strategy_io::export_record(
            &graph,
            &topo,
            &result.best,
            result.best_cost_us,
            result.evals,
        );
        let dump = record.dump.clone();
        let entry = CacheEntry {
            budget_class: class,
            model: req.model.clone(),
            gpus: req.gpus,
            cluster: cluster_name(req.cluster).to_string(),
            record,
        };
        // Take a consistent snapshot under the lock, but keep the disk
        // write (serialize + fsync + rename) outside it — concurrent hit
        // lookups must never stall on I/O.
        let snapshot = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            (cache.insert(entry) && self.cfg.cache_path.is_some()).then(|| cache.snapshot_json())
        };
        self.persist(snapshot);

        self.search_response(
            req,
            outcome,
            class,
            result.best_cost_us,
            result.evals,
            result.evals,
            &dump,
        )
    }

    /// Writes a cache snapshot taken under the lock out to disk, outside
    /// the lock. `None` means nothing changed (or no cache file is
    /// configured); persistence failures are logged, never fatal.
    fn persist(&self, snapshot: Option<String>) {
        if let (Some(json), Some(path)) = (snapshot, &self.cfg.cache_path) {
            if let Err(e) = crate::cache::write_snapshot(path, &json) {
                eprintln!("flexflow serve: cannot persist cache to {path:?}: {e}");
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn search_response(
        &self,
        req: &SearchRequest,
        outcome: CacheOutcome,
        class: u32,
        cost_us: f64,
        evals: u64,
        cached_evals: u64,
        dump: &StrategyDump,
    ) -> String {
        serde_json::to_string(&json!({
            "status": "ok",
            "cache": outcome.as_str(),
            "model": req.model,
            "gpus": req.gpus,
            "cluster": cluster_name(req.cluster),
            "budget_class": class,
            "microbatches": dump.microbatches,
            "param_sync": req.param_sync,
            "recompute": req.recompute,
            "cost_us": cost_us,
            "evals": evals,
            "cached_evals": cached_evals,
            "strategy": dump,
        }))
        .expect("serialize response")
    }

    /// Batch ("oneshot") mode: reads every request line from `input`,
    /// fans the parsed jobs across the worker pool, and writes one
    /// response line per request **in input order**. Used by
    /// `flexflow serve --oneshot`, the CLI smoke tests, and the
    /// `serve_throughput` benchmark.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading `input` or writing `output`.
    pub fn run_batch(&self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        let lines: Vec<String> = input.lines().collect::<Result<_, _>>()?;
        let responses = self.handle_batch(&lines);
        for r in responses {
            writeln!(output, "{r}")?;
        }
        output.flush()
    }

    /// The worker-pool core of [`Server::run_batch`]: answers each line,
    /// preserving order, with at most `cfg.workers` searches in flight.
    pub fn handle_batch(&self, lines: &[String]) -> Vec<String> {
        let n = lines.len();
        let mut responses: Vec<Option<String>> = vec![None; n];
        if n == 0 {
            return Vec::new();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers.max(1).min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let resp = self.handle_line(&lines[i]);
                    results
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((i, resp));
                });
            }
        });
        for (i, r) in results.into_inner().unwrap_or_else(|e| e.into_inner()) {
            responses[i] = Some(r);
        }
        responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    /// Socket mode: listens on a Unix-domain socket, one thread per
    /// connection, searches dispatched through a bounded job queue onto
    /// the worker pool. Responses stream back per connection in request
    /// order. Returns when a client sends `{"cmd":"shutdown"}`; idle
    /// connections notice the flag within half a second (reads are
    /// timeout-based) and never block the shutdown.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/accept errors, and refuses to replace a
    /// path that exists but is not a socket.
    #[cfg(unix)]
    pub fn run_socket(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::os::unix::net::{UnixListener, UnixStream};

        // A stale socket file from a crashed daemon would fail the bind —
        // but only ever delete actual sockets, not whatever file a typo'd
        // --socket points at.
        if path.exists() {
            use std::os::unix::fs::FileTypeExt;
            if std::fs::symlink_metadata(path)?.file_type().is_socket() {
                std::fs::remove_file(path)?;
            } else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!("{} exists and is not a socket", path.display()),
                ));
            }
        }
        let listener = UnixListener::bind(path)?;

        struct Job {
            line: String,
            reply: mpsc::Sender<String>,
        }
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(self.cfg.workers.max(1) * 4);
        let job_rx = Mutex::new(job_rx);

        std::thread::scope(|s| {
            // The bounded pool: workers block on the queue, searches never
            // oversubscribe beyond `cfg.workers`.
            for _ in 0..self.cfg.workers.max(1) {
                s.spawn(|| {
                    loop {
                        let job = {
                            let rx = job_rx.lock().unwrap_or_else(|e| e.into_inner());
                            rx.recv()
                        };
                        let Ok(job) = job else { break };
                        // A hung-up client is not a server error.
                        let _ = job.reply.send(self.handle_line(&job.line));
                    }
                });
            }

            let mut result = Ok(());
            for stream in listener.incoming() {
                if self.shutting_down() {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        // Raise the flag so live connection threads drain
                        // on their next read timeout — otherwise the
                        // scope join below would wedge on them and the
                        // error would never surface.
                        self.shutdown.store(true, Ordering::Release);
                        result = Err(e);
                        break;
                    }
                };
                let job_tx = job_tx.clone();
                let sock_path = path.to_path_buf();
                s.spawn(move || {
                    // Timeout-based reads: an idle client must not pin this
                    // thread (and through it the whole scope) past a
                    // shutdown — on every timeout the flag is re-checked.
                    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
                    let mut reader = std::io::BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => return,
                    });
                    let mut writer = std::io::BufWriter::new(stream);
                    let mut line = String::new();
                    loop {
                        match reader.read_line(&mut line) {
                            Ok(0) => break, // EOF: client hung up
                            Ok(_) => {
                                if !line.trim().is_empty() {
                                    let (reply_tx, reply_rx) = mpsc::channel();
                                    let job = Job {
                                        line: std::mem::take(&mut line),
                                        reply: reply_tx,
                                    };
                                    if job_tx.send(job).is_err() {
                                        break;
                                    }
                                    let Ok(resp) = reply_rx.recv() else { break };
                                    if writeln!(writer, "{resp}")
                                        .and_then(|()| writer.flush())
                                        .is_err()
                                    {
                                        break;
                                    }
                                }
                                line.clear();
                                if self.shutting_down() {
                                    // Poke the accept loop awake so it
                                    // observes the flag and exits.
                                    let _ = UnixStream::connect(&sock_path);
                                    break;
                                }
                            }
                            // Timed out with no (complete) line: `line`
                            // keeps any partial read and the next
                            // read_line call appends to it.
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                                ) =>
                            {
                                if self.shutting_down() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                });
            }
            // Closing the sender drains and stops the workers.
            drop(job_tx);
            result
        })?;
        std::fs::remove_file(path).ok();
        Ok(())
    }

    /// Socket mode is Unix-only (Unix-domain sockets); this stub keeps
    /// the `flexflow` binary compiling on other targets, where
    /// `--oneshot` remains available.
    ///
    /// # Errors
    ///
    /// Always returns [`std::io::ErrorKind::Unsupported`].
    #[cfg(not(unix))]
    pub fn run_socket(&self, _path: &std::path::Path) -> std::io::Result<()> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "socket mode needs Unix domain sockets; use --oneshot on this platform",
        ))
    }
}

/// Builds the `(graph, topology)` pair a search request names — shared by
/// the server and the benchmarks so cache keys line up.
///
/// A100 requests build hierarchical NVSwitch-island clusters (paper
/// clusters only cover the paper's hardware); P100/K80 requests keep the
/// flat Fig. 6 builders so existing cache keys are untouched.
pub fn build_workload(req: &SearchRequest) -> (OpGraph, Topology) {
    let batch = if req.model == "alexnet" { 256 } else { 64 };
    let topo = match req.cluster {
        DeviceKind::A100 => {
            let width = clusters::island_width(req.cluster);
            clusters::preset(&format!("a100x{}-ib", req.gpus))
                .unwrap_or_else(|e| panic!("{e} (gpus must be a multiple of {width})"))
        }
        _ => clusters::paper_cluster(req.cluster, req.gpus),
    };
    (zoo::by_name(&req.model, batch), topo)
}

/// Convenience: extracts a named top-level field from a response line
/// (test/bench helper — responses are flat JSON objects).
pub fn response_field(line: &str, key: &str) -> Option<Value> {
    let v: Value = serde_json::from_str(line).ok()?;
    v.get_field(key).cloned()
}
