//! The serving-side strategy store: sharded, bounded, self-describing.
//!
//! [`crate::cache::StrategyCache`] is a single ordered map — exactly right
//! as a primitive, wrong as the thing a multi-worker server hammers from
//! every connection. This module puts a [`StrategyStore`] trait in front
//! of it with two implementations:
//!
//! - [`ShardedStore`] — the production store. Entries are sharded by the
//!   **key prefix** (the top byte of the graph signature, i.e. the first
//!   hex characters of the content address), so every entry for one op
//!   graph — including all its warm candidates — lives in exactly one
//!   shard and a lookup takes exactly one shard lock. Each shard is
//!   LRU-bounded under configurable entry/byte budgets ([`CacheBounds`]),
//!   counts its own hits/warm/miss/evictions, and persists to its own
//!   `<cache>.shard-NN` file atomically (snapshot under the lock, write
//!   outside it). A legacy single-file cache is migrated on first open —
//!   read, distributed across shards, re-persisted per shard — while the
//!   original file is left byte-for-byte untouched, so PR 4-era cache
//!   files keep round-tripping.
//! - [`LegacyStore`] — the PR 4 semantics (one map, one lock, one file)
//!   behind the same trait, kept so tests can swap the stores and pin
//!   that the sharded path changes *performance*, not *answers*.
//!
//! The store is also where the background polish daemon publishes its
//! results: [`StrategyStore::upgrade`] is a version-checked compare-and-
//! swap, so a polish result computed against a stale read can never
//! clobber a better strategy that a concurrent insert published first.

use crate::cache::{write_snapshot, CacheEntry, Lookup, StrategyCache};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Entry- and byte-count budgets for one store (summed across shards the
/// budgets are split evenly, remainder to the low shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBounds {
    /// Maximum number of cached strategies (0 means "no entries fit").
    pub max_entries: usize,
    /// Maximum total serialized size in bytes.
    pub max_bytes: u64,
}

impl CacheBounds {
    /// No bounds: the grow-only behavior of the PR 4 cache.
    pub fn unbounded() -> Self {
        Self {
            max_entries: usize::MAX,
            max_bytes: u64::MAX,
        }
    }

    /// Bounds with an entry budget only.
    pub fn entries(max_entries: usize) -> Self {
        Self {
            max_entries,
            max_bytes: u64::MAX,
        }
    }
}

impl Default for CacheBounds {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// An owned lookup answer (the trait-object analogue of
/// [`crate::cache::Lookup`], which borrows from the cache and therefore
/// cannot cross a shard-lock boundary).
#[derive(Debug, Clone, PartialEq)]
pub enum StoreLookup {
    /// Servable as-is: same graph + topology, searched at least as hard,
    /// matching axis flags. Carries the entry's address and version so a
    /// caller that later invalidates or upgrades it can name precisely
    /// the state it read.
    Hit {
        /// Content address of the served entry.
        address: String,
        /// Store version of the entry at read time (CAS token).
        version: u64,
        /// The served entry.
        entry: CacheEntry,
    },
    /// A warm-start seed: same graph, wrong topology/budget/axis flags.
    Warm(Box<CacheEntry>),
    /// Nothing reusable.
    Miss,
}

/// Outcome of a version-checked [`StrategyStore::upgrade`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Upgrade {
    /// The candidate was published (it was better, or the slot was gone).
    Published,
    /// A concurrent writer got there first with a strategy at least as
    /// good — the candidate was discarded, nothing was lost.
    Lost,
    /// The candidate was no better than what the polished entry already
    /// held; the entry was left in place (and its polish round advanced).
    NoImprovement,
}

/// A polish candidate: the hottest entry of the store plus the CAS token
/// needed to publish a better version of it.
#[derive(Debug, Clone)]
pub struct HotEntry {
    /// Content address the entry was read from.
    pub address: String,
    /// Store version at read time (pass back to [`StrategyStore::upgrade`]).
    pub version: u64,
    /// Hits served from this entry since it was last polished.
    pub hits: u64,
    /// Completed polish rounds (drives budget escalation).
    pub polish_round: u32,
    /// The entry itself.
    pub entry: CacheEntry,
}

/// Per-shard counters, reported by the `stats` verb.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Live entries.
    pub entries: usize,
    /// Serialized bytes of the live entries.
    pub bytes: u64,
    /// Lookups answered with a hit.
    pub hits: u64,
    /// Lookups answered with a warm seed.
    pub warm: u64,
    /// Lookups answered with a miss.
    pub misses: u64,
    /// Accepted inserts (including upgrades).
    pub inserts: u64,
    /// Entries evicted to respect the bounds.
    pub evictions: u64,
}

/// The serving cache behind a trait, so the sharded-LRU store and the
/// legacy single-map store are interchangeable — in the server and in
/// tests that pin them against each other.
pub trait StrategyStore: Send + Sync {
    /// Content-addressed lookup (see [`StrategyCache::lookup`] for the
    /// hit/warm ranking rules). Touches LRU recency and counters.
    fn lookup(&self, graph_sig: u64, topo_sig: u64, class: u32) -> StoreLookup;

    /// Inserts an entry (lower cost wins at an occupied address), then
    /// enforces the bounds and persists the affected shard. Returns
    /// whether the entry was stored.
    fn insert(&self, entry: CacheEntry) -> bool;

    /// Evicts the entry at an address (corrupt-record escape hatch).
    /// Returns whether something was removed.
    fn remove(&self, address: &str) -> bool;

    /// Version-checked publish of a polished `candidate` for the entry
    /// read as `(address, expected_version)`. Never publishes a strategy
    /// worse than what the address currently holds: on a version mismatch
    /// the candidate must be *strictly* better to land, on a match at
    /// least as good. Always advances the entry's polish round and resets
    /// its heat, so the daemon moves on either way.
    fn upgrade(&self, address: &str, expected_version: u64, candidate: CacheEntry) -> Upgrade;

    /// The hottest entry (most hits since last polished; ties prefer the
    /// least-polished, then the lowest address). `None` when empty.
    fn hottest(&self) -> Option<HotEntry>;

    /// Total live entries across shards.
    fn len(&self) -> usize;

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total serialized bytes across shards.
    fn bytes(&self) -> u64;

    /// Writes every dirty shard to disk (no-op without a cache path).
    /// Called on shutdown after the job queue drains, so an accepted
    /// insert can never be lost to a racing exit.
    fn flush(&self);

    /// Per-shard counters (a single pseudo-shard for the legacy store).
    fn shard_stats(&self) -> Vec<ShardStats>;
}

/// Per-entry bookkeeping the LRU and the polish daemon need.
#[derive(Debug, Clone)]
struct EntryMeta {
    bytes: u64,
    touch: u64,
    version: u64,
    hits: u64,
    polish_round: u32,
}

/// One shard: the map primitive plus LRU/meta bookkeeping and counters.
/// Everything here mutates under the shard's mutex.
#[derive(Debug, Default)]
struct Shard {
    cache: StrategyCache,
    meta: BTreeMap<String, EntryMeta>,
    /// touch counter -> address, oldest first (touches are unique).
    recency: BTreeMap<u64, String>,
    clock: u64,
    versions: u64,
    bytes: u64,
    dirty: bool,
    hits: u64,
    warm: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
}

impl Shard {
    fn touch(&mut self, address: &str) {
        if let Some(meta) = self.meta.get_mut(address) {
            self.recency.remove(&meta.touch);
            self.clock += 1;
            meta.touch = self.clock;
            self.recency.insert(self.clock, address.to_string());
        }
    }

    fn drop_entry(&mut self, address: &str) -> bool {
        let Some(meta) = self.meta.remove(address) else {
            return false;
        };
        self.recency.remove(&meta.touch);
        self.bytes -= meta.bytes;
        self.cache.remove(address);
        self.dirty = true;
        true
    }

    /// Stores `entry` at its address with fresh meta, honoring the
    /// lower-cost-wins rule. Returns whether it landed.
    fn store(&mut self, entry: CacheEntry, polish_round: u32) -> bool {
        let Some(key) = entry.key() else { return false };
        let address = key.address();
        let bytes = entry_bytes(&entry);
        if !self.cache.insert(entry) {
            return false;
        }
        if let Some(old) = self.meta.get(&address) {
            self.bytes -= old.bytes;
            let old_touch = old.touch;
            self.recency.remove(&old_touch);
        }
        self.clock += 1;
        self.versions += 1;
        self.bytes += bytes;
        self.meta.insert(
            address.clone(),
            EntryMeta {
                bytes,
                touch: self.clock,
                version: self.versions,
                hits: 0,
                polish_round,
            },
        );
        self.recency.insert(self.clock, address);
        self.inserts += 1;
        self.dirty = true;
        true
    }

    fn enforce(&mut self, bounds: &CacheBounds) {
        while self.cache.len() > bounds.max_entries || self.bytes > bounds.max_bytes {
            let Some((_, address)) = self.recency.pop_first() else {
                break;
            };
            let Some(meta) = self.meta.remove(&address) else {
                continue;
            };
            self.bytes -= meta.bytes;
            self.cache.remove(&address);
            self.evictions += 1;
            self.dirty = true;
        }
    }

    /// Consistent snapshot for persistence; clears the dirty flag (the
    /// caller commits to writing what it took).
    fn snapshot(&mut self) -> String {
        self.dirty = false;
        self.cache.snapshot_json()
    }
}

fn entry_bytes(entry: &CacheEntry) -> u64 {
    serde_json::to_string(entry).expect("serialize entry").len() as u64
}

/// The key-prefix shard of a graph signature: its top byte, i.e. the
/// first two hex characters of the `g<sig>` address prefix.
fn shard_of(graph_sig: u64, shards: usize) -> usize {
    ((graph_sig >> 56) as usize) % shards.max(1)
}

/// Parses the graph signature back out of a content address
/// (`g<16 hex>-t<16 hex>-b<class>`).
fn address_graph_sig(address: &str) -> Option<u64> {
    let hex = address.strip_prefix('g')?.get(..16)?;
    u64::from_str_radix(hex, 16).ok()
}

/// The on-disk file for shard `index` of a store rooted at `base`.
pub fn shard_path(base: &Path, index: usize) -> PathBuf {
    let name = base
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    base.with_file_name(format!("{name}.shard-{index:02}"))
}

/// The production store: key-prefix shards, per-shard locks, LRU bounds,
/// per-shard atomic persistence. See the module docs for the layout.
pub struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    bounds: CacheBounds,
    path: Option<PathBuf>,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("bounds", &self.bounds)
            .field("path", &self.path)
            .finish()
    }
}

impl ShardedStore {
    /// An empty, unpersisted store.
    pub fn in_memory(shards: usize, bounds: CacheBounds) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            bounds,
            path: None,
        }
    }

    /// Opens the store rooted at `path` with `shards` shards.
    ///
    /// Shard files (`<path>.shard-NN`) win when present — they are
    /// strictly newer than any legacy file at `path`. Otherwise a legacy
    /// single-file cache at `path` is loaded, distributed across the
    /// shards, and re-persisted per shard; the legacy file itself is
    /// never modified. Entries are re-sharded by their own addresses on
    /// every load, so changing the shard count between runs is safe.
    ///
    /// # Errors
    ///
    /// Returns a message when the legacy file or any shard file is
    /// malformed (the caller decides whether to start empty or abort);
    /// stale *entries* inside a well-formed file are skipped, not fatal.
    pub fn open(path: &Path, shards: usize, bounds: CacheBounds) -> Result<Self, String> {
        let store = Self {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            bounds,
            path: Some(path.to_path_buf()),
        };
        let shard_files: Vec<PathBuf> = existing_shard_files(path);
        let mut loaded: Vec<StrategyCache> = Vec::new();
        let migrating = shard_files.is_empty();
        if migrating {
            loaded.push(StrategyCache::load(path)?);
        } else {
            for f in &shard_files {
                loaded.push(StrategyCache::load(f)?);
            }
        }
        {
            for cache in loaded {
                for (_, entry) in cache.entries() {
                    let Some(key) = entry.key() else { continue };
                    let mut shard = store.shards[shard_of(key.graph_sig, store.shards.len())]
                        .lock()
                        .expect("shard lock");
                    shard.store(entry.clone(), 0);
                    shard.enforce(&store.bounds);
                }
            }
        }
        if migrating && !store.is_empty() {
            store.flush();
        } else {
            // Loading never dirtied anything worth rewriting.
            for shard in &store.shards {
                shard.lock().expect("shard lock").dirty = false;
            }
        }
        Ok(store)
    }

    /// Persists one shard if dirty: snapshot under the lock, write after
    /// releasing it (same discipline as the PR 4 server's persist path).
    fn persist_shard(&self, index: usize) {
        let Some(base) = &self.path else { return };
        let json = {
            let mut shard = self.shards[index].lock().expect("shard lock");
            if !shard.dirty {
                return;
            }
            shard.snapshot()
        };
        let path = shard_path(base, index);
        if let Err(e) = write_snapshot(&path, &json) {
            eprintln!("serve: cache shard write failed for {path:?}: {e}");
        }
    }

    fn shard_for_address<'a>(&'a self, address: &str) -> Option<(usize, &'a Mutex<Shard>)> {
        let sig = address_graph_sig(address)?;
        let index = shard_of(sig, self.shards.len());
        Some((index, &self.shards[index]))
    }
}

/// All existing shard files for a store rooted at `base`, in index order.
pub fn existing_shard_files(base: &Path) -> Vec<PathBuf> {
    let Some(dir) = base.parent() else {
        return Vec::new();
    };
    let Some(name) = base.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return Vec::new();
    };
    let prefix = format!("{name}.shard-");
    let Ok(read) = std::fs::read_dir(if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    }) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = read
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_string_lossy()
                .strip_prefix(&prefix)
                .is_some_and(|rest| rest.chars().all(|c| c.is_ascii_digit()))
        })
        .map(|e| e.path())
        .collect();
    files.sort();
    files
}

impl StrategyStore for ShardedStore {
    fn lookup(&self, graph_sig: u64, topo_sig: u64, class: u32) -> StoreLookup {
        let mut shard = self.shards[shard_of(graph_sig, self.shards.len())]
            .lock()
            .expect("shard lock");
        let (address, outcome) = match shard.cache.lookup(graph_sig, topo_sig, class) {
            Lookup::Hit(entry) => {
                let address = entry.key().expect("stored entries have keys").address();
                let entry = entry.clone();
                (Some(address.clone()), Some((address, entry, true)))
            }
            Lookup::Warm(entry) => {
                let address = entry.key().expect("stored entries have keys").address();
                let entry = entry.clone();
                (Some(address.clone()), Some((address, entry, false)))
            }
            Lookup::Miss => (None, None),
        };
        if let Some(addr) = &address {
            shard.touch(addr);
        }
        match outcome {
            Some((address, entry, true)) => {
                shard.hits += 1;
                let meta = shard.meta.get_mut(&address).expect("hit entries have meta");
                meta.hits += 1;
                let version = meta.version;
                StoreLookup::Hit {
                    address,
                    version,
                    entry,
                }
            }
            Some((_, entry, false)) => {
                shard.warm += 1;
                StoreLookup::Warm(Box::new(entry))
            }
            None => {
                shard.misses += 1;
                StoreLookup::Miss
            }
        }
    }

    fn insert(&self, entry: CacheEntry) -> bool {
        let Some(key) = entry.key() else { return false };
        let index = shard_of(key.graph_sig, self.shards.len());
        let stored = {
            let mut shard = self.shards[index].lock().expect("shard lock");
            let stored = shard.store(entry, 0);
            if stored {
                shard.enforce(&self.bounds);
            }
            stored
        };
        if stored {
            self.persist_shard(index);
        }
        stored
    }

    fn remove(&self, address: &str) -> bool {
        let Some((index, mutex)) = self.shard_for_address(address) else {
            return false;
        };
        let removed = mutex.lock().expect("shard lock").drop_entry(address);
        if removed {
            self.persist_shard(index);
        }
        removed
    }

    fn upgrade(&self, address: &str, expected_version: u64, candidate: CacheEntry) -> Upgrade {
        let Some(cand_key) = candidate.key() else {
            return Upgrade::Lost;
        };
        let Some((index, mutex)) = self.shard_for_address(address) else {
            return Upgrade::Lost;
        };
        // A polished record escalates its budget class, so the candidate
        // may land at a *different* address than it was read from; both
        // share the graph signature, hence the shard — one lock keeps the
        // remove + insert atomic.
        debug_assert_eq!(index, shard_of(cand_key.graph_sig, self.shards.len()));
        let outcome = {
            let mut shard = mutex.lock().expect("shard lock");
            let current = shard.cache.get(address).map(|e| e.record.cost_us);
            let meta = shard.meta.get(address).cloned();
            let outcome = match (current, meta) {
                (Some(cost), Some(meta)) => {
                    let wins = if meta.version == expected_version {
                        candidate.record.cost_us <= cost
                    } else {
                        // Someone republished this address since we read
                        // it; only a strictly better strategy may replace
                        // theirs.
                        candidate.record.cost_us < cost
                    };
                    if wins {
                        let round = meta.polish_round.saturating_add(1);
                        shard.drop_entry(address);
                        if shard.store(candidate, round) {
                            shard.enforce(&self.bounds);
                            Upgrade::Published
                        } else {
                            // The escalated address already held something
                            // at least as good — nothing was lost.
                            Upgrade::Lost
                        }
                    } else if meta.version == expected_version {
                        // Polish found no improvement: advance the round
                        // and cool the entry so the daemon moves on.
                        let m = shard.meta.get_mut(address).expect("checked above");
                        m.polish_round = m.polish_round.saturating_add(1);
                        m.hits = 0;
                        Upgrade::NoImprovement
                    } else {
                        Upgrade::Lost
                    }
                }
                // The entry was evicted while we searched: the polished
                // strategy is still the best known answer — publish it.
                _ => {
                    if shard.store(candidate, 1) {
                        shard.enforce(&self.bounds);
                        Upgrade::Published
                    } else {
                        Upgrade::Lost
                    }
                }
            };
            outcome
        };
        if outcome == Upgrade::Published {
            self.persist_shard(index);
        }
        outcome
    }

    fn hottest(&self) -> Option<HotEntry> {
        let mut best: Option<HotEntry> = None;
        for mutex in &self.shards {
            let shard = mutex.lock().expect("shard lock");
            for (address, meta) in &shard.meta {
                let better = best.as_ref().is_none_or(|b| {
                    (meta.hits, std::cmp::Reverse(meta.polish_round))
                        > (b.hits, std::cmp::Reverse(b.polish_round))
                });
                if better {
                    let entry = shard.cache.get(address).expect("meta tracks cache").clone();
                    best = Some(HotEntry {
                        address: address.clone(),
                        version: meta.version,
                        hits: meta.hits,
                        polish_round: meta.polish_round,
                        entry,
                    });
                }
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").cache.len())
            .sum()
    }

    fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").bytes)
            .sum()
    }

    fn flush(&self) {
        for index in 0..self.shards.len() {
            self.persist_shard(index);
        }
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, mutex)| {
                let shard = mutex.lock().expect("shard lock");
                ShardStats {
                    shard: index,
                    entries: shard.cache.len(),
                    bytes: shard.bytes,
                    hits: shard.hits,
                    warm: shard.warm,
                    misses: shard.misses,
                    inserts: shard.inserts,
                    evictions: shard.evictions,
                }
            })
            .collect()
    }
}

/// The PR 4 store: one map, one lock, one grow-only file — behind the
/// same trait so tests can pin the sharded store against it.
#[derive(Debug)]
pub struct LegacyStore {
    inner: Mutex<Shard>,
    path: Option<PathBuf>,
}

impl LegacyStore {
    /// An empty, unpersisted store.
    pub fn in_memory() -> Self {
        Self {
            inner: Mutex::default(),
            path: None,
        }
    }

    /// Opens the single-file cache at `path` (missing file = empty).
    ///
    /// # Errors
    ///
    /// Propagates [`StrategyCache::load`] errors for malformed files.
    pub fn open(path: &Path) -> Result<Self, String> {
        let cache = StrategyCache::load(path)?;
        let store = Self {
            inner: Mutex::default(),
            path: Some(path.to_path_buf()),
        };
        {
            let mut shard = store.inner.lock().expect("store lock");
            for (_, entry) in cache.entries() {
                shard.store(entry.clone(), 0);
            }
            shard.dirty = false;
        }
        Ok(store)
    }

    fn persist(&self) {
        let Some(path) = &self.path else { return };
        let json = {
            let mut shard = self.inner.lock().expect("store lock");
            if !shard.dirty {
                return;
            }
            shard.snapshot()
        };
        if let Err(e) = write_snapshot(path, &json) {
            eprintln!("serve: cache write failed for {path:?}: {e}");
        }
    }
}

impl StrategyStore for LegacyStore {
    fn lookup(&self, graph_sig: u64, topo_sig: u64, class: u32) -> StoreLookup {
        let mut shard = self.inner.lock().expect("store lock");
        let outcome = match shard.cache.lookup(graph_sig, topo_sig, class) {
            Lookup::Hit(entry) => {
                let address = entry.key().expect("stored entries have keys").address();
                Some((address, entry.clone(), true))
            }
            Lookup::Warm(entry) => {
                let address = entry.key().expect("stored entries have keys").address();
                Some((address, entry.clone(), false))
            }
            Lookup::Miss => None,
        };
        match outcome {
            Some((address, entry, true)) => {
                shard.touch(&address);
                shard.hits += 1;
                let meta = shard.meta.get_mut(&address).expect("hit entries have meta");
                meta.hits += 1;
                let version = meta.version;
                StoreLookup::Hit {
                    address,
                    version,
                    entry,
                }
            }
            Some((address, entry, false)) => {
                shard.touch(&address);
                shard.warm += 1;
                StoreLookup::Warm(Box::new(entry))
            }
            None => {
                shard.misses += 1;
                StoreLookup::Miss
            }
        }
    }

    fn insert(&self, entry: CacheEntry) -> bool {
        let stored = self.inner.lock().expect("store lock").store(entry, 0);
        if stored {
            self.persist();
        }
        stored
    }

    fn remove(&self, address: &str) -> bool {
        let removed = self.inner.lock().expect("store lock").drop_entry(address);
        if removed {
            self.persist();
        }
        removed
    }

    fn upgrade(&self, address: &str, expected_version: u64, candidate: CacheEntry) -> Upgrade {
        let outcome = {
            let mut shard = self.inner.lock().expect("store lock");
            let current = shard.cache.get(address).map(|e| e.record.cost_us);
            let meta = shard.meta.get(address).cloned();
            match (current, meta) {
                (Some(cost), Some(meta)) => {
                    let wins = if meta.version == expected_version {
                        candidate.record.cost_us <= cost
                    } else {
                        candidate.record.cost_us < cost
                    };
                    if wins {
                        let round = meta.polish_round.saturating_add(1);
                        shard.drop_entry(address);
                        if shard.store(candidate, round) {
                            Upgrade::Published
                        } else {
                            Upgrade::Lost
                        }
                    } else if meta.version == expected_version {
                        let m = shard.meta.get_mut(address).expect("checked above");
                        m.polish_round = m.polish_round.saturating_add(1);
                        m.hits = 0;
                        Upgrade::NoImprovement
                    } else {
                        Upgrade::Lost
                    }
                }
                _ => {
                    if shard.store(candidate, 1) {
                        Upgrade::Published
                    } else {
                        Upgrade::Lost
                    }
                }
            }
        };
        if outcome == Upgrade::Published {
            self.persist();
        }
        outcome
    }

    fn hottest(&self) -> Option<HotEntry> {
        let shard = self.inner.lock().expect("store lock");
        let mut best: Option<HotEntry> = None;
        for (address, meta) in &shard.meta {
            let better = best.as_ref().is_none_or(|b| {
                (meta.hits, std::cmp::Reverse(meta.polish_round))
                    > (b.hits, std::cmp::Reverse(b.polish_round))
            });
            if better {
                let entry = shard.cache.get(address).expect("meta tracks cache").clone();
                best = Some(HotEntry {
                    address: address.clone(),
                    version: meta.version,
                    hits: meta.hits,
                    polish_round: meta.polish_round,
                    entry,
                });
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("store lock").cache.len()
    }

    fn bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").bytes
    }

    fn flush(&self) {
        self.persist();
    }

    fn shard_stats(&self) -> Vec<ShardStats> {
        let shard = self.inner.lock().expect("store lock");
        vec![ShardStats {
            shard: 0,
            entries: shard.cache.len(),
            bytes: shard.bytes,
            hits: shard.hits,
            warm: shard.warm,
            misses: shard.misses,
            inserts: shard.inserts,
            evictions: shard.evictions,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::composite_class;
    use flexflow_core::strategy_io::{export_record, signature_hex};
    use flexflow_core::Strategy;
    use flexflow_device::clusters;
    use flexflow_opgraph::zoo;

    fn entry(graph_sig: u64, topo_sig: u64, class: u32, cost: f64) -> CacheEntry {
        let g = zoo::lenet(64);
        let topo = clusters::uniform_cluster(1, 2, 16.0, 4.0);
        let s = Strategy::data_parallel(&g, &topo);
        let mut record = export_record(&g, &topo, &s, cost, 100);
        record.graph_sig = signature_hex(graph_sig);
        record.topo_sig = signature_hex(topo_sig);
        CacheEntry {
            budget_class: class,
            model: "lenet".into(),
            gpus: 2,
            cluster: "p100".into(),
            record,
        }
    }

    fn addr(graph_sig: u64, topo_sig: u64, class: u32) -> String {
        crate::cache::CacheKey {
            graph_sig,
            topo_sig,
            budget_class: class,
        }
        .address()
    }

    fn stores() -> Vec<Box<dyn StrategyStore>> {
        vec![
            Box::new(ShardedStore::in_memory(4, CacheBounds::unbounded())),
            Box::new(LegacyStore::in_memory()),
        ]
    }

    #[test]
    fn stores_answer_like_the_raw_cache() {
        for store in stores() {
            assert_eq!(store.lookup(1, 2, 3), StoreLookup::Miss);
            assert!(store.insert(entry(1, 2, 3, 100.0)));
            assert!(matches!(
                store.lookup(1, 2, 3),
                StoreLookup::Hit { entry, .. } if (entry.record.cost_us - 100.0).abs() < 1e-9
            ));
            assert!(matches!(store.lookup(1, 9, 3), StoreLookup::Warm(_)));
            assert_eq!(store.lookup(42, 2, 3), StoreLookup::Miss);
            assert!(!store.insert(entry(1, 2, 3, 150.0)), "worse is rejected");
            assert!(store.insert(entry(1, 2, 3, 50.0)), "better replaces");
            assert_eq!(store.len(), 1);
            assert!(store.remove(&addr(1, 2, 3)));
            assert_eq!(store.lookup(1, 2, 3), StoreLookup::Miss);
            let stats = store.shard_stats();
            assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 1);
            assert_eq!(stats.iter().map(|s| s.warm).sum::<u64>(), 1);
            assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), 3);
        }
    }

    #[test]
    fn lru_eviction_respects_bounds_and_recency() {
        let store = ShardedStore::in_memory(1, CacheBounds::entries(2));
        assert!(store.insert(entry(1, 2, 3, 100.0)));
        assert!(store.insert(entry(2, 2, 3, 100.0)));
        // Touch the older entry so the newer one becomes LRU.
        assert!(matches!(store.lookup(1, 2, 3), StoreLookup::Hit { .. }));
        assert!(store.insert(entry(3, 2, 3, 100.0)));
        assert_eq!(store.len(), 2);
        assert!(
            matches!(store.lookup(2, 2, 3), StoreLookup::Miss),
            "the least-recently-used entry is the one evicted"
        );
        assert!(matches!(store.lookup(1, 2, 3), StoreLookup::Hit { .. }));
        assert!(matches!(store.lookup(3, 2, 3), StoreLookup::Hit { .. }));
        assert_eq!(store.shard_stats()[0].evictions, 1);
    }

    #[test]
    fn byte_bounds_are_never_exceeded() {
        let one = entry_bytes(&entry(1, 2, 3, 100.0));
        let store = ShardedStore::in_memory(
            2,
            CacheBounds {
                max_entries: usize::MAX,
                max_bytes: one * 3,
            },
        );
        for sig in 1..=10u64 {
            store.insert(entry(sig, 2, 3, 100.0));
            assert!(store.bytes() <= one * 3, "byte bound exceeded");
        }
        assert!(store.len() < 10);
        assert!(
            store.shard_stats().iter().map(|s| s.evictions).sum::<u64>() > 0,
            "churn must evict"
        );
    }

    #[test]
    fn hit_after_evict_degrades_to_warm_not_hit() {
        let store = ShardedStore::in_memory(1, CacheBounds::entries(1));
        assert!(store.insert(entry(1, 2, 3, 100.0)));
        // Same graph, different topology: displaces the first entry.
        assert!(store.insert(entry(1, 9, 3, 90.0)));
        match store.lookup(1, 2, 3) {
            StoreLookup::Warm(w) => assert_eq!(w.record.topo_sig, signature_hex(9)),
            other => panic!("evicted exact match must degrade to warm, got {other:?}"),
        }
    }

    #[test]
    fn upgrade_is_a_version_checked_cas() {
        for store in stores() {
            assert!(store.insert(entry(1, 2, 3, 100.0)));
            let StoreLookup::Hit {
                address, version, ..
            } = store.lookup(1, 2, 3)
            else {
                panic!("expected hit")
            };

            // A concurrent insert bumps the version...
            assert!(store.insert(entry(1, 2, 3, 80.0)));
            // ...so a stale polish result that is *worse* than the new
            // occupant must lose, not clobber it.
            assert_eq!(
                store.upgrade(&address, version, entry(1, 2, 3, 90.0)),
                Upgrade::Lost
            );
            let StoreLookup::Hit { entry: e, .. } = store.lookup(1, 2, 3) else {
                panic!("expected hit")
            };
            assert!((e.record.cost_us - 80.0).abs() < 1e-9);

            // A stale result that is strictly better still lands.
            assert_eq!(
                store.upgrade(&address, version, entry(1, 2, 3, 70.0)),
                Upgrade::Published
            );

            // A fresh read upgrades cleanly, even at equal cost (the
            // polished record carries more search effort).
            let StoreLookup::Hit {
                address, version, ..
            } = store.lookup(1, 2, 3)
            else {
                panic!("expected hit")
            };
            assert_eq!(
                store.upgrade(&address, version, entry(1, 2, 3, 70.0)),
                Upgrade::Published
            );

            // No improvement: the entry stays, the round advances.
            let StoreLookup::Hit {
                address, version, ..
            } = store.lookup(1, 2, 3)
            else {
                panic!("expected hit")
            };
            assert_eq!(
                store.upgrade(&address, version, entry(1, 2, 3, 75.0)),
                Upgrade::NoImprovement
            );
            let hot = store.hottest().expect("non-empty");
            assert_eq!(hot.polish_round, 3);
        }
    }

    #[test]
    fn upgrade_may_escalate_the_address() {
        for store in stores() {
            let lo = composite_class(100, 1, false, false);
            let hi = composite_class(400, 1, false, false);
            assert!(store.insert(entry(1, 2, lo, 100.0)));
            let StoreLookup::Hit {
                address, version, ..
            } = store.lookup(1, 2, lo)
            else {
                panic!("expected hit")
            };
            assert_eq!(
                store.upgrade(&address, version, entry(1, 2, hi, 95.0)),
                Upgrade::Published
            );
            // The old address is gone; the polished entry answers both
            // the old class (searched harder) and the new one.
            assert_eq!(store.len(), 1);
            for class in [lo, hi] {
                let StoreLookup::Hit { entry: e, .. } = store.lookup(1, 2, class) else {
                    panic!("expected hit at class {class}")
                };
                assert_eq!(e.budget_class, hi);
                assert!((e.record.cost_us - 95.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hottest_tracks_hits_since_last_polish() {
        for store in stores() {
            assert!(store.insert(entry(1, 2, 3, 100.0)));
            assert!(store.insert(entry(2, 2, 3, 100.0)));
            for _ in 0..3 {
                assert!(matches!(store.lookup(2, 2, 3), StoreLookup::Hit { .. }));
            }
            assert!(matches!(store.lookup(1, 2, 3), StoreLookup::Hit { .. }));
            let hot = store.hottest().expect("non-empty");
            assert_eq!(hot.hits, 3);
            assert_eq!(hot.entry.record.graph_sig, signature_hex(2));
            // Polishing cools the entry: the other one is hottest next.
            // (An equal-cost candidate at a matched version publishes —
            // same answer, fresh heat.)
            assert_eq!(
                store.upgrade(&hot.address, hot.version, entry(2, 2, 3, 100.0)),
                Upgrade::Published
            );
            let hot = store.hottest().expect("non-empty");
            assert_eq!(hot.entry.record.graph_sig, signature_hex(1));
        }
    }

    #[test]
    fn sharded_persistence_and_legacy_migration() {
        let dir = std::env::temp_dir().join(format!("ff-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        // Seed a legacy single-file cache.
        let legacy = LegacyStore::open(&path).unwrap();
        assert!(legacy.insert(entry(1, 2, 3, 100.0)));
        assert!(legacy.insert(entry(0xab00_0000_0000_0001, 2, 3, 50.0)));
        let legacy_bytes = std::fs::read(&path).unwrap();

        // Opening sharded migrates: entries distributed, shard files
        // written, legacy file byte-for-byte untouched.
        let store = ShardedStore::open(&path, 4, CacheBounds::unbounded()).unwrap();
        assert_eq!(store.len(), 2);
        assert!(!existing_shard_files(&path).is_empty());
        assert_eq!(std::fs::read(&path).unwrap(), legacy_bytes);

        // A reopen prefers the shard files; new inserts only touch them.
        assert!(store.insert(entry(7, 7, 3, 10.0)));
        let back = ShardedStore::open(&path, 8, CacheBounds::unbounded()).unwrap();
        assert_eq!(back.len(), 3);
        assert!(matches!(back.lookup(7, 7, 3), StoreLookup::Hit { .. }));
        assert_eq!(std::fs::read(&path).unwrap(), legacy_bytes);

        std::fs::remove_dir_all(&dir).ok();
    }
}
