//! Property tests for the content-addressed cache key: the whole serving
//! design rests on the key being (a) *stable* — surviving every
//! serialize→deserialize boundary a record crosses — and (b) *canonical* —
//! two isomorphic builder call sequences must address the same entry.

use flexflow_core::strategy_io::{self, StrategyRecord};
use flexflow_core::{soap::ConfigSpace, Strategy};
use flexflow_device::clusters;
use flexflow_opgraph::{graph_signature, OpGraph, OpKind};
use flexflow_server::{budget_class, CacheEntry};
use flexflow_tensor::TensorShape;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A two-tower MLP whose builder call order is controlled per layer by
/// `order_bits`: bit `i` decides which tower's `i`-th layer is inserted
/// first. Every value of `order_bits` yields the *same* dataflow graph,
/// inserted in a different (valid) topological order, with different op
/// names and layer-id numbering — exactly the variation the canonical
/// signature must erase.
fn two_tower_mlp(widths: &[u64], order_bits: u64, name_salt: u64) -> OpGraph {
    let mut g = OpGraph::new(format!("mlp-{order_bits}"));
    let x = g.add_input(format!("x{name_salt}"), TensorShape::new(&[8, 32]));
    let mut heads = [x, x];
    for (i, &w) in widths.iter().enumerate() {
        let first = (order_bits >> i & 1) as usize;
        for t in [first, 1 - first] {
            let name = format!("t{t}l{i}s{name_salt}");
            heads[t] = g
                .add_op(OpKind::Linear { out_features: w }, &[heads[t]], name)
                .unwrap();
        }
    }
    g.add_op(OpKind::Add, &[heads[0], heads[1]], "merge")
        .unwrap();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Isomorphic builder call sequences (any insertion interleaving, any
    /// names) produce the same graph signature, hence the same address.
    #[test]
    fn cache_key_is_insensitive_to_op_insertion_order(
        w1 in 1u64..5,
        w2 in 1u64..5,
        w3 in 1u64..5,
        order_a in 0u64..8,
        order_b in 0u64..8,
        salt in 0u64..1000,
    ) {
        let widths = [w1 * 8, w2 * 8, w3 * 8];
        let a = two_tower_mlp(&widths, order_a, 0);
        let b = two_tower_mlp(&widths, order_b, salt);
        prop_assert_eq!(graph_signature(&a), graph_signature(&b));
    }

    /// A strategy record survives export → JSON → import → re-export with
    /// its cache key (signatures + budget class) and payload intact.
    #[test]
    fn cache_key_is_stable_under_serde_roundtrips(
        seed in 0u64..1000,
        gpus in 1usize..5,
        evals in 1u64..5000,
        model_pick in 0usize..3,
    ) {
        let graph = match model_pick {
            0 => flexflow_opgraph::zoo::lenet(64),
            1 => flexflow_opgraph::zoo::rnnlm(64, 3),
            _ => two_tower_mlp(&[16, 8], seed % 8, seed),
        };
        let topo = clusters::uniform_cluster(1, gpus, 16.0, 4.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let strategy = Strategy::random(&graph, &topo, ConfigSpace::Full, &mut rng);
        let record = strategy_io::export_record(&graph, &topo, &strategy, 123.0, evals);

        // Record-level JSON roundtrip.
        let json = serde_json::to_string(&record).unwrap();
        let back: StrategyRecord = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &record);

        // Entry-level roundtrip (the form the cache file stores) keeps the
        // content address bit-for-bit.
        let entry = CacheEntry {
            budget_class: budget_class(evals),
            model: graph.name().to_string(),
            gpus,
            cluster: "test".into(),
            record: back,
        };
        let entry_json = serde_json::to_string(&entry).unwrap();
        let entry_back: CacheEntry = serde_json::from_str(&entry_json).unwrap();
        let key = entry.key().expect("key parses");
        let key_back = entry_back.key().expect("roundtripped key parses");
        prop_assert_eq!(key.address(), key_back.address());

        // And the strategy itself reimports identically: same signatures,
        // same configs.
        let restored = strategy_io::import_record(&graph, &topo, &entry_back.record).unwrap();
        prop_assert_eq!(&restored, &strategy);
        prop_assert_eq!(
            key.graph_sig,
            graph_signature(&graph),
            "address matches a fresh graph hash"
        );
        prop_assert_eq!(key.topo_sig, topo.signature());
    }

    /// Budget classes are monotone and bucket powers of two together —
    /// the property the hit rule (`entry.class >= request.class`) needs.
    #[test]
    fn budget_class_is_monotone(a in 1u64..100_000, b in 1u64..100_000) {
        if a <= b {
            prop_assert!(budget_class(a) <= budget_class(b));
        } else {
            prop_assert!(budget_class(a) >= budget_class(b));
        }
    }
}
