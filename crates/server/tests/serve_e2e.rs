//! End-to-end tests of the serving engine: hit/warm/cold classification,
//! batch-mode ordering under the worker pool, persistence across daemon
//! restarts, and the Unix-socket front-end.

use flexflow_server::server::response_field;
use flexflow_server::{Server, ServerConfig};

fn field_str(resp: &str, key: &str) -> String {
    response_field(resp, key)
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_else(|| panic!("no string field {key:?} in {resp}"))
}

fn field_u64(resp: &str, key: &str) -> u64 {
    response_field(resp, key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("no numeric field {key:?} in {resp}"))
}

fn field_f64(resp: &str, key: &str) -> f64 {
    response_field(resp, key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("no numeric field {key:?} in {resp}"))
}

/// A fast search request: lenet on a 2-GPU node with a tiny budget.
fn lenet_req(evals: u64, extra: &str) -> String {
    format!(r#"{{"model":"lenet","gpus":2,"evals":{evals},"seed":3{extra}}}"#)
}

#[test]
fn cold_then_hit_then_warm_lifecycle() {
    let server = Server::new(ServerConfig::default());

    // First contact: cold search.
    let r1 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r1, "status"), "ok");
    assert_eq!(field_str(&r1, "cache"), "cold");
    assert!(field_u64(&r1, "evals") > 0, "cold search must evaluate");
    let cold_cost = field_f64(&r1, "cost_us");
    assert!(cold_cost > 0.0);

    // Same request: pure hit, zero simulator evaluations, same answer.
    let r2 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r2, "cache"), "hit");
    assert_eq!(field_u64(&r2, "evals"), 0);
    assert_eq!(field_f64(&r2, "cost_us").to_bits(), cold_cost.to_bits());
    assert!(
        field_u64(&r2, "cached_evals") > 0,
        "hit reports the cached effort"
    );

    // Smaller budget, same model+topology: the harder-searched entry
    // still answers (class 6 covers class 4).
    let r3 = server.handle_line(&lenet_req(10, ""));
    assert_eq!(field_str(&r3, "cache"), "hit");

    // Larger budget: near-miss — warm-started search, which then caches
    // its own (harder) entry.
    let r4 = server.handle_line(&lenet_req(300, ""));
    assert_eq!(field_str(&r4, "cache"), "warm");
    assert!(field_u64(&r4, "evals") > 0);
    assert!(
        field_f64(&r4, "cost_us") <= cold_cost + 1e-9,
        "warm start can only improve on its seed"
    );

    // Different topology, same graph: also warm (remapped seed).
    let r5 = server.handle_line(r#"{"model":"lenet","gpus":4,"evals":40,"seed":3}"#);
    assert_eq!(field_str(&r5, "cache"), "warm");

    // refresh bypasses the cache but still answers.
    let r6 = server.handle_line(&lenet_req(40, r#","refresh":true"#));
    assert_eq!(field_str(&r6, "cache"), "cold");

    // Stats reflect the traffic.
    let stats = server.handle_line(r#"{"cmd":"stats"}"#);
    assert_eq!(field_u64(&stats, "hits"), 2);
    assert_eq!(field_u64(&stats, "warm"), 2);
    assert_eq!(field_u64(&stats, "cold"), 2);
    assert_eq!(field_u64(&stats, "requests"), 7);
    assert!(field_u64(&stats, "entries") >= 2);
}

#[test]
fn batch_mode_preserves_order_across_the_pool() {
    let server = Server::new(ServerConfig {
        workers: 4,
        cache_path: None,
        ..ServerConfig::default()
    });
    let mut lines = vec![
        lenet_req(30, ""),
        "garbage".to_string(),
        lenet_req(30, ""), // may hit or cold depending on scheduling; status ok either way
        r#"{"cmd":"stats"}"#.to_string(),
    ];
    // Pad with more work than workers to exercise queuing.
    for _ in 0..4 {
        lines.push(lenet_req(25, ""));
    }
    let responses = server.handle_batch(&lines);
    assert_eq!(responses.len(), lines.len());
    assert_eq!(field_str(&responses[0], "status"), "ok");
    assert_eq!(field_str(&responses[1], "status"), "error");
    assert_eq!(field_str(&responses[2], "status"), "ok");
    assert!(response_field(&responses[3], "requests").is_some());
    for r in &responses[4..] {
        assert_eq!(field_str(r, "status"), "ok");
        assert_eq!(field_str(r, "model"), "lenet");
    }
}

#[test]
fn run_batch_writes_one_line_per_request() {
    let server = Server::new(ServerConfig::default());
    let input = format!("{}\n\n{}\n", lenet_req(20, ""), r#"{"cmd":"stats"}"#);
    let mut out = Vec::new();
    server
        .run_batch(std::io::BufReader::new(input.as_bytes()), &mut out)
        .unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // The blank line is a (malformed) request too: in-band error.
    assert_eq!(lines.len(), 3);
    assert_eq!(field_str(lines[0], "cache"), "cold");
    assert_eq!(field_str(lines[1], "status"), "error");
    assert!(response_field(lines[2], "entries").is_some());
}

#[test]
fn cache_persists_across_server_restarts() {
    let dir = std::env::temp_dir().join(format!("ff-serve-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("strategies.json");

    let cfg = ServerConfig {
        workers: 1,
        cache_path: Some(cache_path.clone()),
        ..ServerConfig::default()
    };
    let first = Server::new(cfg.clone());
    let r1 = first.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r1, "cache"), "cold");
    // The sharded store persists to sibling shard files, not the root
    // path (which stays free for legacy-file migration).
    assert!(
        !cache_path.exists(),
        "the legacy path is never written by the sharded store"
    );
    let shard_files: Vec<_> = flexflow_server::store::existing_shard_files(&cache_path);
    assert!(!shard_files.is_empty(), "shard file written on insert");
    drop(first);

    // A fresh daemon answers the same request from disk: zero evals.
    let second = Server::new(cfg);
    assert_eq!(second.cache_len(), 1);
    let r2 = second.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r2, "cache"), "hit");
    assert_eq!(field_u64(&r2, "evals"), 0);
    assert_eq!(
        field_f64(&r2, "cost_us").to_bits(),
        field_f64(&r1, "cost_us").to_bits()
    );

    // A corrupt shard file must not stop the daemon from starting: it
    // comes up with an empty cache and re-learns.
    std::fs::write(&shard_files[0], "{ definitely not json").unwrap();
    let third = Server::new(ServerConfig {
        workers: 1,
        cache_path: Some(cache_path.clone()),
        ..ServerConfig::default()
    });
    assert_eq!(third.cache_len(), 0);
    let r3 = third.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r3, "cache"), "cold");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_cache_entries_are_evicted_not_pinned() {
    use flexflow_core::strategy_io::export_record;
    use flexflow_core::Strategy;
    use flexflow_device::clusters;
    use flexflow_opgraph::{graph_signature, zoo};
    use flexflow_server::{budget_class, CacheEntry, StrategyCache};

    let dir = std::env::temp_dir().join(format!("ff-serve-evict-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("strategies.json");

    // Hand-craft a poisoned entry at the exact address lenet@2GPU/40-evals
    // resolves to: the signatures match, but the dump belongs to a
    // different graph (wrong op count -> structural validation fails) and
    // its cost is absurdly good, so `insert`'s lower-cost-wins rule would
    // keep any honest replacement out forever if eviction didn't happen.
    let lenet = zoo::lenet(64);
    let topo = clusters::paper_cluster(flexflow_device::DeviceKind::P100, 2);
    let rnnlm = zoo::rnnlm(64, 2);
    let rnnlm_topo = clusters::uniform_cluster(1, 2, 16.0, 4.0);
    let mut record = export_record(
        &rnnlm,
        &rnnlm_topo,
        &Strategy::data_parallel(&rnnlm, &rnnlm_topo),
        0.001,
        1,
    );
    record.graph_sig = flexflow_core::strategy_io::signature_hex(graph_signature(&lenet));
    record.topo_sig = flexflow_core::strategy_io::signature_hex(topo.signature());
    let mut cache = StrategyCache::new();
    assert!(cache.insert(CacheEntry {
        budget_class: budget_class(40),
        model: "lenet".into(),
        gpus: 2,
        cluster: "p100".into(),
        record,
    }));
    cache.save(&cache_path).unwrap();

    let server = Server::new(ServerConfig {
        workers: 1,
        cache_path: Some(cache_path),
        ..ServerConfig::default()
    });
    // Lookup hits the poisoned entry, validation fails, the entry is
    // evicted, and the request degrades to a cold search...
    let r1 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r1, "cache"), "cold");
    // ...whose (honest) result now occupies the address: the next
    // request is a real hit, not a cold search forever.
    let r2 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r2, "cache"), "hit");
    assert_eq!(field_u64(&r2, "evals"), 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn identical_requests_are_deterministic_across_fresh_servers() {
    // Content-addressed caching only makes sense if the cold answer for a
    // fixed (model, cluster, seed, budget) is reproducible.
    let run = || {
        let server = Server::new(ServerConfig::default());
        let resp = server.handle_line(&lenet_req(60, ""));
        (
            field_f64(&resp, "cost_us").to_bits(),
            response_field(&resp, "strategy").map(|v| serde_json::to_string(&v).unwrap()),
        )
    };
    assert_eq!(run(), run());
}

#[cfg(unix)]
#[test]
fn socket_mode_serves_concurrent_clients() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("ff-serve-sock-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("flexflow.sock");

    let server = Arc::new(Server::new(ServerConfig {
        workers: 2,
        cache_path: None,
        ..ServerConfig::default()
    }));

    std::thread::scope(|s| {
        let daemon = {
            let server = Arc::clone(&server);
            let sock = sock.clone();
            s.spawn(move || server.run_socket(&sock))
        };
        // Wait for the socket to appear.
        for _ in 0..200 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let request_once = |line: &str| -> String {
            let stream = UnixStream::connect(&sock).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            writeln!(w, "{line}").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            resp.trim().to_string()
        };

        // Two clients in parallel, then a hit from a third.
        let (a, b) = std::thread::scope(|inner| {
            let ha = inner.spawn(|| request_once(&lenet_req(30, "")));
            let hb =
                inner.spawn(|| request_once(r#"{"model":"lenet","gpus":2,"evals":30,"seed":9}"#));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert_eq!(field_str(&a, "status"), "ok");
        assert_eq!(field_str(&b, "status"), "ok");
        let c = request_once(&lenet_req(30, ""));
        assert_eq!(field_str(&c, "cache"), "hit");

        // An idle client that never sends anything must not block the
        // shutdown (connection reads are timeout-based).
        let idle = UnixStream::connect(&sock).expect("idle connect");
        let d = request_once(r#"{"cmd":"shutdown"}"#);
        assert!(d.contains("shutting_down"));
        daemon.join().unwrap().expect("socket loop exits cleanly");
        drop(idle);
    });

    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn socket_mode_refuses_to_clobber_non_socket_paths() {
    let dir = std::env::temp_dir().join(format!("ff-serve-clobber-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("precious.json");
    std::fs::write(&path, "important data").unwrap();

    let server = Server::new(ServerConfig::default());
    let err = server.run_socket(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists, "{err}");
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        "important data",
        "existing non-socket file must be untouched"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pre_pipeline_v1_cache_files_still_serve_hits() {
    use flexflow_core::strategy_io::{export_record, StrategyRecord};
    use flexflow_core::Strategy;
    use flexflow_device::clusters;
    use flexflow_opgraph::zoo;

    let dir = std::env::temp_dir().join(format!("ff-e2e-v1cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("strategies.json");

    // Fabricate a pre-PR5 cache file: a v1 record whose dump has NO
    // `microbatches` field (the field did not exist), searched hard
    // enough (class 10 covers 512..=1023 evals) to answer small budgets.
    let graph = zoo::by_name("lenet", 64);
    let topo = clusters::paper_cluster(flexflow_device::DeviceKind::P100, 2);
    let s = Strategy::data_parallel(&graph, &topo);
    let mut record: StrategyRecord = export_record(&graph, &topo, &s, 1234.5, 600);
    record.version = 1;
    let record_json = serde_json::to_string(&record)
        .unwrap()
        .replace(r#""microbatches":1,"#, "");
    assert!(
        !record_json.contains("microbatches"),
        "v1 fixture must not carry the new field: {record_json}"
    );
    let entry_json = format!(
        r#"{{"budget_class":10,"model":"lenet","gpus":2,"cluster":"p100","record":{record_json}}}"#
    );
    std::fs::write(
        &cache_path,
        format!(r#"{{"version":1,"entries":[{entry_json}]}}"#),
    )
    .unwrap();

    // A fresh server over the old file answers the matching request as a
    // hit: zero evaluations, the stored cost, microbatches defaulted to 1.
    let server = Server::new(ServerConfig {
        workers: 1,
        cache_path: Some(cache_path),
        ..ServerConfig::default()
    });
    let resp = server.handle_line(r#"{"model":"lenet","gpus":2,"evals":40,"seed":9}"#);
    assert_eq!(field_str(&resp, "status"), "ok", "{resp}");
    assert_eq!(field_str(&resp, "cache"), "hit", "{resp}");
    assert_eq!(field_u64(&resp, "evals"), 0);
    assert_eq!(field_f64(&resp, "cost_us"), 1234.5);
    assert_eq!(field_u64(&resp, "microbatches"), 1);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_and_plain_requests_address_distinct_entries() {
    let server = Server::new(ServerConfig::default());

    // Prime the cache with a plain (non-pipelined) search.
    let r1 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r1, "cache"), "cold");

    // The same request with pipelining enabled must NOT hit the plain
    // entry (its search never explored microbatches); the plain entry
    // still seeds it as a warm start.
    let r2 = server.handle_line(&lenet_req(40, r#","microbatches":4"#));
    assert_eq!(field_str(&r2, "cache"), "warm", "{r2}");
    assert!(field_u64(&r2, "evals") > 0);

    // Repeating the pipelined request now hits its own entry.
    let r3 = server.handle_line(&lenet_req(40, r#","microbatches":4"#));
    assert_eq!(field_str(&r3, "cache"), "hit", "{r3}");
    assert_eq!(field_u64(&r3, "evals"), 0);

    // And the plain request still hits the plain entry, not the
    // pipelined one (whose strategy may use m > 1).
    let r4 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r4, "cache"), "hit", "{r4}");
    assert_eq!(field_u64(&r4, "microbatches"), 1);
}

#[test]
fn plain_requests_never_receive_pipelined_strategies() {
    // Only a pipelined entry exists; a plain request warm-starts from it
    // but must get (and cache) a whole-batch strategy back — the warm
    // seed's microbatch count is clamped to the request's cap.
    let server = Server::new(ServerConfig::default());
    let r1 = server.handle_line(&lenet_req(40, r#","microbatches":4"#));
    assert_eq!(field_str(&r1, "cache"), "cold");
    let r2 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r2, "cache"), "warm", "{r2}");
    assert_eq!(
        field_u64(&r2, "microbatches"),
        1,
        "a non-pipelined requester must never be handed m > 1: {r2}"
    );
    // The cached plain entry keeps serving plain hits at m = 1.
    let r3 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r3, "cache"), "hit", "{r3}");
    assert_eq!(field_u64(&r3, "microbatches"), 1);
}

#[test]
fn serve_default_microbatches_raises_the_request_floor() {
    // A server started with --microbatches 4 searches the pipelined
    // space even for requests that don't ask for it, and its entries
    // carry the pipelined budget class.
    let server = Server::new(ServerConfig {
        workers: 1,
        cache_path: None,
        default_microbatches: 4,
        ..ServerConfig::default()
    });
    let r1 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r1, "cache"), "cold");
    // The same request hits the entry the floor produced.
    let r2 = server.handle_line(&lenet_req(40, ""));
    assert_eq!(field_str(&r2, "cache"), "hit", "{r2}");
    // An explicitly larger cap wins over the floor: different class.
    let r3 = server.handle_line(&lenet_req(40, r#","microbatches":8"#));
    assert_ne!(field_str(&r3, "cache"), "hit", "{r3}");
}
