//! End-to-end tests of the TCP front end and the polish daemon: the
//! nonblocking readiness loop under concurrent client load (no lost or
//! reordered responses), graceful shutdown that drains in-flight jobs
//! and flushes every dirty shard, versioned-envelope responses, and the
//! polish daemon's monotone-upgrade guarantee.

use flexflow_server::polish::{self, PolishConfig, PolishOutcome};
use flexflow_server::server::response_field;
use flexflow_server::store::StoreLookup;
use flexflow_server::{CacheBounds, Server, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn field_str(resp: &str, key: &str) -> String {
    response_field(resp, key)
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_else(|| panic!("no string field {key:?} in {resp}"))
}

fn field_u64(resp: &str, key: &str) -> u64 {
    response_field(resp, key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("no numeric field {key:?} in {resp}"))
}

/// Binds an OS-assigned port and returns the listener plus its address.
fn ephemeral_listener() -> (TcpListener, String) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    (listener, addr)
}

/// One client conversation: send every line, read one response per line,
/// in order.
fn converse(addr: &str, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writeln!(writer, "{line}").expect("write request");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "connection closed mid-conversation");
        responses.push(resp.trim().to_string());
    }
    responses
}

#[test]
fn tcp_hammer_no_lost_responses_under_concurrent_load() {
    const CLIENTS: usize = 6;
    const REQUESTS: usize = 8;

    let server = Arc::new(Server::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    }));
    let (listener, addr) = ephemeral_listener();

    std::thread::scope(|s| {
        let daemon = {
            let server = Arc::clone(&server);
            s.spawn(move || server.serve_listener(listener))
        };

        // Warm the cache so the burst is mostly hits (fast) with a few
        // searches mixed in; every client interleaves search and stats.
        let prime = converse(&addr, &[r#"{"model":"lenet","gpus":2,"evals":25,"seed":1}"#.into()]);
        assert_eq!(field_str(&prime[0], "status"), "ok");

        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let addr = addr.clone();
            handles.push(s.spawn(move || {
                let mut lines = Vec::new();
                for r in 0..REQUESTS {
                    if (c + r) % 3 == 0 {
                        lines.push(r#"{"v":2,"verb":"stats"}"#.to_string());
                    } else {
                        lines.push(r#"{"model":"lenet","gpus":2,"evals":25,"seed":1}"#.to_string());
                    }
                }
                converse(&addr, &lines)
            }));
        }
        let mut total_busy = 0u64;
        for h in handles {
            let responses = h.join().expect("client thread");
            // NO LOST RESPONSES: one response per request, in order.
            assert_eq!(responses.len(), REQUESTS);
            for resp in &responses {
                let status = field_str(resp, "status");
                // Busy is a legal in-band backpressure answer; anything
                // else must be a success.
                match status.as_str() {
                    "ok" => {}
                    "busy" => total_busy += 1,
                    other => panic!("unexpected status {other:?}: {resp}"),
                }
            }
        }
        // The server's own busy counter agrees with what clients saw.
        let stats = converse(&addr, &[r#"{"v":2,"verb":"stats"}"#.into()]);
        assert!(field_u64(&stats[0], "busy") >= total_busy);

        let bye = converse(&addr, &[r#"{"v":2,"verb":"shutdown"}"#.into()]);
        assert!(bye[0].contains("shutting_down"), "{}", bye[0]);
        daemon.join().unwrap().expect("tcp loop exits cleanly");
    });
}

#[test]
fn tcp_responses_carry_the_envelope_version() {
    let server = Server::new(ServerConfig::default());
    // v1 requests get v1 responses: byte-compatible with PR 4 clients,
    // no version marker.
    let v1 = server.handle_line(r#"{"cmd":"stats"}"#);
    assert!(response_field(&v1, "v").is_none(), "{v1}");
    // v2 requests get stamped responses, with "v" leading the object.
    let v2 = server.handle_line(r#"{"v":2,"verb":"stats"}"#);
    assert_eq!(field_u64(&v2, "v"), 2);
    assert!(v2.starts_with(r#"{"v":2,"#), "{v2}");
    // Same stats payload either way.
    assert!(response_field(&v1, "entries").is_some());
    assert!(response_field(&v2, "entries").is_some());
    // The stats verb reports the per-shard counter table and latency
    // histogram the tentpole promises.
    assert!(response_field(&v2, "shards").is_some(), "{v2}");
    assert!(response_field(&v2, "latency_p99_us").is_some(), "{v2}");
    assert!(response_field(&v2, "eval_debt").is_some(), "{v2}");
}

#[test]
fn shutdown_mid_burst_drains_jobs_and_reloads_the_cache_intact() {
    let dir = std::env::temp_dir().join(format!("ff-tcp-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache_path = dir.join("strategies.json");

    let cfg = ServerConfig {
        workers: 2,
        cache_path: Some(cache_path.clone()),
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::new(cfg.clone()));
    let (listener, addr) = ephemeral_listener();

    // Distinct (gpus, evals) pairs -> distinct cache addresses, so every
    // drained search shows up as its own entry after the reload.
    let burst: Vec<String> = [(2, 20), (2, 40), (2, 100), (4, 20), (4, 40), (4, 100)]
        .iter()
        .map(|(gpus, evals)| {
            format!(r#"{{"model":"lenet","gpus":{gpus},"evals":{evals},"seed":7}}"#)
        })
        .collect();

    std::thread::scope(|s| {
        let daemon = {
            let server = Arc::clone(&server);
            s.spawn(move || server.serve_listener(listener))
        };
        // Fire the whole burst on one connection, then — without reading
        // a single response — send shutdown from another. The server
        // must drain every accepted job and answer all of them.
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        for line in &burst {
            writeln!(writer, "{line}").unwrap();
        }
        // Give the front end a moment to accept the burst into the
        // queue, then kill the server mid-flight.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let bye = converse(&addr, &[r#"{"v":2,"verb":"shutdown"}"#.into()]);
        assert!(bye[0].contains("shutting_down"), "{}", bye[0]);

        let mut answered = 0;
        let mut resp = String::new();
        while reader.read_line(&mut resp).unwrap_or(0) > 0 {
            let line = resp.trim();
            if !line.is_empty() {
                let status = field_str(line, "status");
                assert!(
                    status == "ok" || status == "busy" || status == "error",
                    "{line}"
                );
                answered += 1;
            }
            resp.clear();
        }
        assert_eq!(answered, burst.len(), "every accepted request answered");
        daemon.join().unwrap().expect("clean exit");
    });

    // Every search the old server completed is on disk: a fresh server
    // answers the completed subset as hits. Cold and warm searches both
    // insert at their own budget-class address, so both count. (Busy- or
    // shutdown-refused requests were never accepted, so they are
    // legitimately absent.)
    let stats = server.stats();
    let completed = stats.cold.load(std::sync::atomic::Ordering::Relaxed)
        + stats.warm.load(std::sync::atomic::Ordering::Relaxed);
    assert!(completed > 0, "at least one search completed before exit");
    drop(server);
    let reloaded = Server::new(cfg);
    assert_eq!(
        reloaded.cache_len() as u64,
        completed,
        "flushed shards reload intact"
    );
    let r = reloaded.handle_line(r#"{"model":"lenet","gpus":2,"evals":20,"seed":0}"#);
    assert_eq!(field_str(&r, "cache"), "hit", "{r}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn polish_upgrades_are_monotone_and_escalate() {
    // Prime a server with a cheap search, then run polish steps by hand:
    // the cached cost must never increase, must strictly improve at
    // least once (a 12-eval rnnlm search is far from converged), and the
    // recorded effort must grow every round.
    let server = Server::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let r1 = server.handle_line(r#"{"model":"rnnlm","gpus":4,"evals":12,"seed":11}"#);
    assert_eq!(field_str(&r1, "status"), "ok", "{r1}");
    assert_eq!(field_str(&r1, "cache"), "cold");

    let cost_at = |server: &Server| -> (f64, u64) {
        let hot = server.store().hottest().expect("entry exists");
        (hot.entry.record.cost_us, hot.entry.record.evals)
    };
    // Heat the entry so hottest() proposes it.
    let r2 = server.handle_line(r#"{"model":"rnnlm","gpus":4,"evals":12,"seed":11}"#);
    assert_eq!(field_str(&r2, "cache"), "hit");

    let (mut cost, mut evals) = cost_at(&server);
    let cfg = PolishConfig {
        max_rounds: 2,
        max_evals: 200,
        ..PolishConfig::default()
    };
    let mut improved = false;
    let mut published = 0;
    for _ in 0..cfg.max_rounds {
        match polish::step(&server, &cfg) {
            PolishOutcome::Published {
                cost_before,
                cost_after,
                ..
            } => {
                assert!(
                    cost_after <= cost_before,
                    "polish published a worse strategy: {cost_after} > {cost_before}"
                );
                if cost_after < cost_before {
                    improved = true;
                }
                published += 1;
            }
            PolishOutcome::NoImprovement { .. } => {}
            PolishOutcome::Idle => break,
            other => panic!("unexpected polish outcome: {other:?}"),
        }
        let (now, now_evals) = cost_at(&server);
        assert!(now <= cost + 1e-9, "cached cost increased: {now} > {cost}");
        assert!(now_evals >= evals, "recorded effort must not shrink");
        cost = now;
        evals = now_evals;
    }
    assert!(published >= 1, "polish published at least one upgrade");
    assert!(
        improved,
        "a 12-eval rnnlm search must leave room for polish to strictly improve"
    );
    assert!(server.stats().polish_runs.load(std::sync::atomic::Ordering::Relaxed) >= 1);

    // The polished entry still answers the original request — as a hit,
    // at the polished (better or equal) cost.
    let r3 = server.handle_line(r#"{"model":"rnnlm","gpus":4,"evals":12,"seed":11}"#);
    assert_eq!(field_str(&r3, "cache"), "hit", "{r3}");
}

#[test]
fn connection_limit_answers_in_band_instead_of_hanging() {
    let server = Arc::new(Server::new(ServerConfig {
        workers: 1,
        max_connections: 1,
        ..ServerConfig::default()
    }));
    let (listener, addr) = ephemeral_listener();
    std::thread::scope(|s| {
        let daemon = {
            let server = Arc::clone(&server);
            s.spawn(move || server.serve_listener(listener))
        };
        // First connection occupies the single slot.
        let keeper = TcpStream::connect(&addr).expect("connect");
        // Wait until the readiness loop has registered it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let refused = loop {
            let stream = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            // Over-limit connections get exactly one busy line then EOF;
            // if the keeper wasn't registered yet, this connection took
            // the slot and reads block — use a timeout to retry.
            reader
                .get_ref()
                .set_read_timeout(Some(std::time::Duration::from_millis(200)))
                .unwrap();
            match reader.read_line(&mut line) {
                Ok(n) if n > 0 => break line,
                _ => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "no refusal within the deadline"
                    );
                }
            }
        };
        assert_eq!(field_str(refused.trim(), "status"), "busy", "{refused}");
        drop(keeper);

        // The shutdown connection races the server noticing the keeper's
        // EOF and freeing its slot — a busy refusal here is legal, so
        // retry until the slot opens up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let bye = loop {
            let bye = converse(&addr, &[r#"{"cmd":"shutdown"}"#.into()]);
            if field_str(&bye[0], "status") != "busy" {
                break bye;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "keeper slot never freed: {}",
                bye[0]
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        assert!(bye[0].contains("shutting_down"), "{}", bye[0]);
        daemon.join().unwrap().expect("clean exit");
    });
}

#[test]
fn server_handle_builder_wires_the_whole_product() {
    // The one-stop builder: bounded sharded store + workers + polish.
    let handle = ServerHandle::builder()
        .workers(1)
        .shards(4)
        .cache_bounds(CacheBounds::entries(8))
        .polish(PolishConfig {
            interval_ms: 5,
            ..PolishConfig::default()
        })
        .build();
    let r = handle.handle_line(r#"{"model":"lenet","gpus":2,"evals":25,"seed":2}"#);
    assert_eq!(field_str(&r, "cache"), "cold");
    let r = handle.handle_line(r#"{"model":"lenet","gpus":2,"evals":25,"seed":2}"#);
    assert_eq!(field_str(&r, "cache"), "hit");
    // The daemon thread is alive behind the handle; give it a beat and
    // confirm it ran without ever publishing a worse answer.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let server = Arc::clone(handle.server());
    let hot = server.store().hottest().expect("entry exists");
    let r = handle.handle_line(r#"{"model":"lenet","gpus":2,"evals":25,"seed":2}"#);
    assert_eq!(field_str(&r, "cache"), "hit", "{r}");
    let hit_cost = response_field(&r, "cost_us").and_then(|v| v.as_f64()).unwrap();
    assert!(hit_cost <= hot.entry.record.cost_us + 1e-9);
    drop(handle); // joins the daemon

    // The store lookup API is part of the public surface the builder
    // wires: the entry is still addressable directly.
    let key = hot.entry.key().expect("key");
    assert!(matches!(
        server.store().lookup(key.graph_sig, key.topo_sig, key.budget_class),
        StoreLookup::Hit { .. }
    ));
}
