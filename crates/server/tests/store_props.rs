//! Property tests for the sharded LRU store's invariants: the configured
//! bounds are *never* exceeded (not even transiently observable), the
//! eviction order is exactly least-recently-used, and an evicted entry
//! degrades future requests to warm-or-miss — never a stale hit.

use flexflow_core::strategy_io::{export_record, signature_hex};
use flexflow_core::Strategy as PlacementStrategy;
use flexflow_device::clusters;
use flexflow_opgraph::zoo;
use flexflow_server::{
    CacheBounds, CacheEntry, CacheKey, ShardedStore, StoreLookup, StrategyStore,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A cache entry with forged signatures, so tests control the address
/// without building a distinct graph per case.
fn entry(graph_sig: u64, topo_sig: u64, class: u32, cost: f64) -> CacheEntry {
    let g = zoo::lenet(64);
    let topo = clusters::uniform_cluster(1, 2, 16.0, 4.0);
    let s = PlacementStrategy::data_parallel(&g, &topo);
    let mut record = export_record(&g, &topo, &s, cost, 100);
    record.graph_sig = signature_hex(graph_sig);
    record.topo_sig = signature_hex(topo_sig);
    CacheEntry {
        budget_class: class,
        model: "lenet".into(),
        gpus: 2,
        cluster: "p100".into(),
        record,
    }
}

fn addr(graph_sig: u64, topo_sig: u64, class: u32) -> String {
    CacheKey {
        graph_sig,
        topo_sig,
        budget_class: class,
    }
    .address()
}

/// One scripted store operation.
#[derive(Debug, Clone)]
enum Op {
    /// Insert at `(graph_sig, topo_sig)` with the given cost.
    Insert(u64, u64, f64),
    /// Lookup `(graph_sig, topo_sig)` at the shared class.
    Lookup(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small signature pool forces address collisions, replacements and
    // warm lookups; distinct costs keep the lower-cost-wins rule
    // deterministic.
    (0u64..6, 0u64..3, 1u64..10_000, proptest::bool::ANY).prop_map(|(g, t, c, is_insert)| {
        if is_insert {
            Op::Insert(g, t, c as f64)
        } else {
            Op::Lookup(g, t)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replays a random op script against a 1-shard bounded store and an
    /// exact reference model of the LRU semantics: the entry bound holds
    /// after every operation, and the survivor set (which addresses are
    /// still hits) matches the model's — i.e. eviction is exactly
    /// least-recently-used, with hits, warm lookups and inserts all
    /// counting as "use".
    #[test]
    fn bounded_store_matches_an_lru_shadow_model(
        ops in prop::collection::vec(op_strategy(), 1..60),
        bound in 1usize..5,
    ) {
        const CLASS: u32 = 7;
        let store = ShardedStore::in_memory(1, CacheBounds::entries(bound));
        // Model: address -> (cost, last-use tick).
        let mut model: BTreeMap<String, (f64, u64)> = BTreeMap::new();
        let mut tick = 0u64;
        for op in &ops {
            tick += 1;
            match *op {
                Op::Insert(g, t, base_cost) => {
                    // Unique costs keep both the lower-cost-wins rule and
                    // the warm ranking free of tie-break ambiguity.
                    let cost = base_cost + tick as f64 / 1000.0;
                    let a = addr(g, t, CLASS);
                    let accepted = match model.get(&a) {
                        Some(&(held, _)) => cost < held,
                        None => true,
                    };
                    prop_assert_eq!(
                        store.insert(entry(g, t, CLASS, cost)),
                        accepted,
                        "lower-cost-wins mismatch at {}", a
                    );
                    if accepted {
                        model.insert(a, (cost, tick));
                        while model.len() > bound {
                            let oldest = model
                                .iter()
                                .min_by_key(|(_, &(_, used))| used)
                                .map(|(a, _)| a.clone())
                                .expect("non-empty");
                            model.remove(&oldest);
                        }
                    }
                }
                Op::Lookup(g, t) => {
                    let a = addr(g, t, CLASS);
                    match store.lookup(g, t, CLASS) {
                        StoreLookup::Hit { address, entry, .. } => {
                            prop_assert_eq!(&address, &a);
                            let &(cost, _) = model.get(&a).expect("model agrees this is live");
                            prop_assert!((entry.record.cost_us - cost).abs() < 1e-9);
                            model.insert(a, (cost, tick));
                        }
                        StoreLookup::Warm(_) => {
                            // Same graph, different topology survives
                            // somewhere; the exact address must be gone.
                            prop_assert!(!model.contains_key(&a), "warm shadowed a live hit");
                            // The touched warm entry also counts as used —
                            // mirror it. With every entry at the same
                            // class, the warm ranking reduces to
                            // lowest-cost-wins among same-graph entries
                            // (costs are unique by construction).
                            let warm_addr = model
                                .iter()
                                .filter(|(k, _)| k.starts_with(&format!("g{g:016x}-")))
                                .min_by(|(_, (a, _)), (_, (b, _))| a.total_cmp(b))
                                .map(|(k, _)| k.clone());
                            if let Some(w) = warm_addr {
                                let cost = model[&w].0;
                                model.insert(w, (cost, tick));
                            }
                        }
                        StoreLookup::Miss => {
                            prop_assert!(!model.contains_key(&a), "miss shadowed a live hit");
                        }
                    }
                }
            }
            prop_assert!(store.len() <= bound, "entry bound exceeded: {} > {bound}", store.len());
        }
        // Survivor sets agree exactly.
        for (a, &(cost, _)) in &model {
            let (g, t) = parse_addr(a);
            match store.lookup(g, t, CLASS) {
                StoreLookup::Hit { entry, .. } => {
                    prop_assert!((entry.record.cost_us - cost).abs() < 1e-9);
                }
                other => prop_assert!(false, "model says {a} is live, store says {other:?}"),
            }
        }
        prop_assert_eq!(store.len(), model.len());
    }

    /// The byte bound holds after every insert, across shard counts, and
    /// eviction accounts for everything that went missing.
    #[test]
    fn byte_bound_holds_under_churn(
        sigs in prop::collection::vec((0u64..64, 1u64..10_000), 1..40),
        shards in 1usize..5,
        slots in 2u64..6,
    ) {
        let one = {
            // Probe the serialized size of a representative entry.
            let probe = ShardedStore::in_memory(1, CacheBounds::unbounded());
            probe.insert(entry(0, 0, 7, 9999.0));
            probe.bytes()
        };
        let cap = one * slots;
        let store = ShardedStore::in_memory(shards, CacheBounds {
            max_entries: usize::MAX,
            max_bytes: cap,
        });
        let mut accepted = 0u64;
        for &(g, cost) in &sigs {
            if store.insert(entry(g, 1, 7, cost as f64)) {
                accepted += 1;
            }
            prop_assert!(store.bytes() <= cap, "byte bound exceeded: {} > {cap}", store.bytes());
        }
        let stats = store.shard_stats();
        let evictions: u64 = stats.iter().map(|s| s.evictions).sum();
        let inserts: u64 = stats.iter().map(|s| s.inserts).sum();
        prop_assert_eq!(inserts, accepted);
        // Every accepted insert either replaced in place, survived, or
        // was evicted; the store never leaks entries past its own count.
        prop_assert!(store.len() as u64 + evictions <= accepted);
    }

    /// Once an entry is evicted, the request that used to hit it degrades
    /// to a *warm* lookup seeded by the surviving same-graph entry — never
    /// a hit on stale data.
    #[test]
    fn hit_after_evict_degrades_to_warm(
        g in 0u64..100,
        churn in 100u64..200,
        class in 1u32..20,
    ) {
        let store = ShardedStore::in_memory(1, CacheBounds::entries(2));
        // Two entries for the same graph on different topologies.
        prop_assert!(store.insert(entry(g, 1, class, 50.0)));
        prop_assert!(store.insert(entry(g, 2, class, 60.0)));
        prop_assert!(matches!(store.lookup(g, 1, class), StoreLookup::Hit { .. }));
        // Keep (g, topo 2) warm while churning a third address in: the
        // LRU victim is (g, topo 1).
        prop_assert!(matches!(store.lookup(g, 2, class), StoreLookup::Hit { .. }));
        prop_assert!(store.insert(entry(churn, 1, class, 70.0)));
        prop_assert_eq!(store.len(), 2);
        match store.lookup(g, 1, class) {
            StoreLookup::Warm(e) => {
                // The seed is the surviving sibling, not the evicted entry.
                prop_assert_eq!(&e.record.topo_sig, &signature_hex(2));
            }
            other => prop_assert!(false, "expected warm after eviction, got {other:?}"),
        }
    }
}

/// Parses `g<hex>-t<hex>-b<dec>` back into `(graph_sig, topo_sig)`.
fn parse_addr(a: &str) -> (u64, u64) {
    let g = u64::from_str_radix(&a[1..17], 16).expect("graph sig");
    let t = u64::from_str_radix(&a[19..35], 16).expect("topo sig");
    (g, t)
}
