//! Dense `f32` host tensors with data.
//!
//! The execution simulator never touches tensor *contents* (paper assumption
//! A1: execution time is content-independent), but the dataflow runtime in
//! `flexflow-runtime` really executes partitioned operators and needs real
//! buffers. `DenseTensor` provides row-major storage with rect-based slicing
//! and scatter, which is exactly the data movement a SOAP task performs:
//! gather the input sub-tensors, compute, write the output tile.

use crate::rect::Rect;
use crate::shape::TensorShape;
use std::fmt;

/// A dense row-major `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct DenseTensor {
    shape: TensorShape,
    data: Vec<f32>,
}

impl DenseTensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: TensorShape) -> Self {
        Self {
            data: vec![0.0; shape.volume() as usize],
            shape,
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's volume.
    pub fn from_vec(shape: TensorShape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len() as u64,
            shape.volume(),
            "data length {} does not match shape volume {}",
            data.len(),
            shape.volume()
        );
        Self { shape, data }
    }

    /// Creates a tensor whose element at flat index `i` is `f(i)`.
    pub fn from_fn(shape: TensorShape, f: impl Fn(usize) -> f32) -> Self {
        let data = (0..shape.volume() as usize).map(f).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &TensorShape {
        &self.shape
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn offset(&self, idx: &[u64]) -> usize {
        assert_eq!(idx.len(), self.shape.ndims(), "index rank mismatch");
        let mut off = 0u64;
        for (d, &i) in idx.iter().enumerate() {
            assert!(i < self.shape.dim(d), "index out of bounds in dim {d}");
            off = off * self.shape.dim(d) + i;
        }
        off as usize
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, idx: &[u64]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at_mut(&mut self, idx: &[u64]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    /// Copies the elements under `rect` into a new contiguous tensor whose
    /// shape equals the rect's extents.
    ///
    /// # Panics
    ///
    /// Panics if `rect` does not fit inside this tensor.
    pub fn slice(&self, rect: &Rect) -> DenseTensor {
        let full = Rect::full(&self.shape);
        assert!(full.contains(rect), "rect {rect:?} escapes tensor {full:?}");
        let extents = rect.extents();
        let out_shape = TensorShape::with_dtype(&extents, self.shape.dtype());
        let mut out = DenseTensor::zeros(out_shape);
        let mut idx = rect.lo().to_vec();
        let mut out_idx = vec![0u64; idx.len()];
        loop {
            *out.at_mut(&out_idx) = self.at(&idx);
            // increment row-major
            let mut d = idx.len();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                out_idx[d] += 1;
                if idx[d] < rect.hi()[d] {
                    break;
                }
                idx[d] = rect.lo()[d];
                out_idx[d] = 0;
            }
        }
    }

    /// Writes `tile` (a contiguous tensor of the rect's extents) into the
    /// region `rect` of this tensor.
    ///
    /// # Panics
    ///
    /// Panics if `rect` does not fit inside this tensor or if the tile's
    /// shape does not match the rect's extents.
    pub fn scatter(&mut self, rect: &Rect, tile: &DenseTensor) {
        let full = Rect::full(&self.shape);
        assert!(full.contains(rect), "rect {rect:?} escapes tensor {full:?}");
        assert_eq!(
            tile.shape.dims(),
            rect.extents().as_slice(),
            "tile shape does not match rect extents"
        );
        let mut idx = rect.lo().to_vec();
        let mut tile_idx = vec![0u64; idx.len()];
        loop {
            *self.at_mut(&idx) = tile.at(&tile_idx);
            let mut d = idx.len();
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                idx[d] += 1;
                tile_idx[d] += 1;
                if idx[d] < rect.hi()[d] {
                    break;
                }
                idx[d] = rect.lo()[d];
                tile_idx[d] = 0;
            }
        }
    }

    /// Maximum absolute element-wise difference between two tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseTensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Whether two tensors agree within `tol` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn approx_eq(&self, other: &DenseTensor, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for DenseTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DenseTensor(shape={:?}, {} elems)",
            self.shape,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: &[u64]) -> DenseTensor {
        DenseTensor::from_fn(TensorShape::new(shape), |i| i as f32)
    }

    #[test]
    fn zeros_and_from_vec() {
        let t = DenseTensor::zeros(TensorShape::new(&[2, 3]));
        assert_eq!(t.data(), &[0.0; 6]);
        let u = DenseTensor::from_vec(TensorShape::new(&[2]), vec![1.0, 2.0]);
        assert_eq!(u.at(&[1]), 2.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape volume")]
    fn from_vec_rejects_wrong_length() {
        DenseTensor::from_vec(TensorShape::new(&[2, 2]), vec![1.0]);
    }

    #[test]
    fn offset_is_row_major() {
        let t = iota(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
    }

    #[test]
    fn slice_extracts_subtensor() {
        let t = iota(&[4, 4]);
        let r = Rect::new(&[1, 2], &[3, 4]);
        let s = t.slice(&r);
        assert_eq!(s.shape().dims(), &[2, 2]);
        assert_eq!(s.data(), &[6.0, 7.0, 10.0, 11.0]);
    }

    #[test]
    fn scatter_roundtrips_slice() {
        let t = iota(&[4, 6]);
        let r = Rect::new(&[0, 2], &[4, 5]);
        let s = t.slice(&r);
        let mut u = DenseTensor::zeros(*t.shape());
        u.scatter(&r, &s);
        // inside the rect, u matches t; outside it is zero
        for i in 0..4u64 {
            for j in 0..6u64 {
                let expected = if (2..5).contains(&j) {
                    t.at(&[i, j])
                } else {
                    0.0
                };
                assert_eq!(u.at(&[i, j]), expected, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn tiles_reassemble_exactly() {
        let t = iota(&[6, 8]);
        let tiles = crate::partition::tile_all(t.shape(), &[3, 2]).unwrap();
        let mut rebuilt = DenseTensor::zeros(*t.shape());
        for rect in &tiles {
            rebuilt.scatter(rect, &t.slice(rect));
        }
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = DenseTensor::from_vec(TensorShape::new(&[2]), vec![1.0, 2.0]);
        let b = DenseTensor::from_vec(TensorShape::new(&[2]), vec![1.0, 2.0 + 1e-6]);
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-8));
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    #[should_panic(expected = "escapes tensor")]
    fn slice_out_of_bounds_panics() {
        let t = iota(&[2, 2]);
        t.slice(&Rect::new(&[0, 0], &[3, 2]));
    }
}
