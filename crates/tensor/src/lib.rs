//! Tensor shapes, partitioning math, and dense host tensors for the FlexFlow
//! reproduction.
//!
//! This crate is the lowest-level substrate of the workspace. It provides:
//!
//! - [`DataType`] — element types and their sizes;
//! - [`TensorShape`] — an n-dimensional extent (up to [`MAX_DIMS`] dims);
//! - [`Rect`] — a half-open hyper-rectangle describing a sub-tensor, used by
//!   the SOAP partitioning machinery to describe which slice of a tensor a
//!   task reads or writes;
//! - [`partition`] — equal-size tiling of a shape by per-dimension degrees
//!   (the paper partitions every parallelizable dimension into equal chunks,
//!   §4: "We use equal size partitions in each dimension to guarantee
//!   well-balanced workload distributions");
//! - [`DenseTensor`] — a real `f32` tensor with data, used by the dataflow
//!   runtime to execute parallelization strategies for real and check that
//!   every SOAP configuration computes the same values as a serial run.
//!
//! # Example
//!
//! ```
//! use flexflow_tensor::{TensorShape, partition};
//!
//! // A batch of 64 samples with 256 channels, tiled 2 ways over samples and
//! // 2 ways over channels: four equal sub-tensors.
//! let shape = TensorShape::new(&[64, 256]);
//! let tiles = partition::tile_all(&shape, &[2, 2]).unwrap();
//! assert_eq!(tiles.len(), 4);
//! assert!(tiles.iter().all(|r| r.volume() == 64 * 256 / 4));
//! ```

#![warn(missing_docs)]
pub mod dense;
pub mod partition;
pub mod rect;
pub mod shape;
pub mod stablehash;

pub use dense::DenseTensor;
pub use partition::{tile, tile_all, PartitionError};
pub use rect::Rect;
pub use shape::{DataType, TensorShape, MAX_DIMS};
pub use stablehash::StableHasher;
