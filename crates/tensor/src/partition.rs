//! Equal-size tiling of tensor shapes.
//!
//! The paper partitions every parallelizable dimension of an operation's
//! output tensor into equal chunks (§4). A parallelization configuration
//! with per-dimension degrees `[p0, ..., pn]` therefore splits the output
//! into `p0 * ... * pn` equal tiles, one per task. This module computes
//! those tiles.

use crate::rect::Rect;
use crate::shape::TensorShape;
use std::fmt;

/// Error produced when a shape cannot be tiled by the requested degrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The degree vector's length does not match the shape's rank.
    RankMismatch {
        /// Rank of the shape being tiled.
        shape_ndims: usize,
        /// Length of the supplied degree vector.
        degrees_len: usize,
    },
    /// A degree of zero was supplied.
    ZeroDegree {
        /// The offending dimension.
        dim: usize,
    },
    /// A dimension is not divisible by its degree, so equal tiles are
    /// impossible.
    NotDivisible {
        /// The offending dimension.
        dim: usize,
        /// Extent of that dimension.
        extent: u64,
        /// Requested degree of parallelism.
        degree: u64,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::RankMismatch {
                shape_ndims,
                degrees_len,
            } => write!(
                f,
                "degree vector of length {degrees_len} does not match shape rank {shape_ndims}"
            ),
            PartitionError::ZeroDegree { dim } => {
                write!(f, "degree in dimension {dim} must be positive")
            }
            PartitionError::NotDivisible {
                dim,
                extent,
                degree,
            } => write!(
                f,
                "dimension {dim} of extent {extent} is not divisible by degree {degree}"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Validates a degree vector against a shape without producing tiles.
///
/// # Errors
///
/// Returns the first [`PartitionError`] encountered, if any.
pub fn validate(shape: &TensorShape, degrees: &[u64]) -> Result<(), PartitionError> {
    if degrees.len() != shape.ndims() {
        return Err(PartitionError::RankMismatch {
            shape_ndims: shape.ndims(),
            degrees_len: degrees.len(),
        });
    }
    for (dim, &deg) in degrees.iter().enumerate() {
        if deg == 0 {
            return Err(PartitionError::ZeroDegree { dim });
        }
        let extent = shape.dim(dim);
        if !extent.is_multiple_of(deg) {
            return Err(PartitionError::NotDivisible {
                dim,
                extent,
                degree: deg,
            });
        }
    }
    Ok(())
}

/// Computes the tile at multi-index `index` (one coordinate per dimension).
///
/// # Errors
///
/// Returns a [`PartitionError`] when the degrees do not evenly tile the
/// shape.
///
/// # Panics
///
/// Panics if `index` has the wrong rank or any coordinate is out of range
/// for its degree.
pub fn tile(shape: &TensorShape, degrees: &[u64], index: &[u64]) -> Result<Rect, PartitionError> {
    validate(shape, degrees)?;
    assert_eq!(index.len(), degrees.len(), "index rank mismatch");
    let n = shape.ndims();
    let mut lo = Vec::with_capacity(n);
    let mut hi = Vec::with_capacity(n);
    for d in 0..n {
        assert!(
            index[d] < degrees[d],
            "tile index {} out of range for degree {} in dim {d}",
            index[d],
            degrees[d]
        );
        let chunk = shape.dim(d) / degrees[d];
        lo.push(index[d] * chunk);
        hi.push((index[d] + 1) * chunk);
    }
    Ok(Rect::new(&lo, &hi))
}

/// Computes all tiles in row-major order of the multi-index (the last
/// dimension varies fastest).
///
/// The flattened ordering matches the task numbering `t_{i:1} .. t_{i:|c_i|}`
/// used throughout the paper: task `k` owns tile `k` of its operation's
/// output tensor.
///
/// # Errors
///
/// Returns a [`PartitionError`] when the degrees do not evenly tile the
/// shape.
pub fn tile_all(shape: &TensorShape, degrees: &[u64]) -> Result<Vec<Rect>, PartitionError> {
    validate(shape, degrees)?;
    let total: u64 = degrees.iter().product();
    let mut out = Vec::with_capacity(total as usize);
    let mut index = vec![0u64; degrees.len()];
    loop {
        out.push(tile(shape, degrees, &index)?);
        // row-major increment
        let mut d = degrees.len();
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            index[d] += 1;
            if index[d] < degrees[d] {
                break;
            }
            index[d] = 0;
        }
    }
}

/// Converts a flat task index into the multi-index used by [`tile`], in the
/// same row-major order produced by [`tile_all`].
///
/// # Panics
///
/// Panics if `flat` is out of range for the degree product.
pub fn unflatten_index(degrees: &[u64], flat: u64) -> Vec<u64> {
    let total: u64 = degrees.iter().product();
    assert!(flat < total, "flat index {flat} out of range {total}");
    let mut rem = flat;
    let mut index = vec![0u64; degrees.len()];
    for d in (0..degrees.len()).rev() {
        index[d] = rem % degrees[d];
        rem /= degrees[d];
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_partition_the_shape() {
        let s = TensorShape::new(&[8, 6]);
        let tiles = tile_all(&s, &[2, 3]).unwrap();
        assert_eq!(tiles.len(), 6);
        let total: u64 = tiles.iter().map(Rect::volume).sum();
        assert_eq!(total, s.volume());
        // pairwise disjoint
        for i in 0..tiles.len() {
            for j in (i + 1)..tiles.len() {
                assert!(!tiles[i].intersects(&tiles[j]), "{i} overlaps {j}");
            }
        }
    }

    #[test]
    fn row_major_ordering() {
        let s = TensorShape::new(&[4, 4]);
        let tiles = tile_all(&s, &[2, 2]).unwrap();
        // last dim varies fastest
        assert_eq!(tiles[0], Rect::new(&[0, 0], &[2, 2]));
        assert_eq!(tiles[1], Rect::new(&[0, 2], &[2, 4]));
        assert_eq!(tiles[2], Rect::new(&[2, 0], &[4, 2]));
        assert_eq!(tiles[3], Rect::new(&[2, 2], &[4, 4]));
    }

    #[test]
    fn unflatten_matches_tile_all() {
        let s = TensorShape::new(&[8, 6, 4]);
        let degrees = [2, 3, 2];
        let tiles = tile_all(&s, &degrees).unwrap();
        for (flat, expected) in tiles.iter().enumerate() {
            let idx = unflatten_index(&degrees, flat as u64);
            let got = tile(&s, &degrees, &idx).unwrap();
            assert_eq!(&got, expected, "flat={flat}");
        }
    }

    #[test]
    fn degree_one_is_identity() {
        let s = TensorShape::new(&[5, 7]);
        let tiles = tile_all(&s, &[1, 1]).unwrap();
        assert_eq!(tiles, vec![Rect::full(&s)]);
    }

    #[test]
    fn indivisible_degree_is_rejected() {
        let s = TensorShape::new(&[5, 7]);
        let err = tile_all(&s, &[2, 1]).unwrap_err();
        assert_eq!(
            err,
            PartitionError::NotDivisible {
                dim: 0,
                extent: 5,
                degree: 2
            }
        );
        assert!(err.to_string().contains("not divisible"));
    }

    #[test]
    fn zero_degree_is_rejected() {
        let s = TensorShape::new(&[4]);
        assert_eq!(
            tile_all(&s, &[0]).unwrap_err(),
            PartitionError::ZeroDegree { dim: 0 }
        );
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let s = TensorShape::new(&[4, 4]);
        assert!(matches!(
            tile_all(&s, &[2]).unwrap_err(),
            PartitionError::RankMismatch { .. }
        ));
    }
}
