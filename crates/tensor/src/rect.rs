//! Half-open hyper-rectangles describing sub-tensors.

use crate::shape::{TensorShape, MAX_DIMS};
use std::fmt;

/// A half-open hyper-rectangle `[lo, hi)` inside a tensor.
///
/// Rects describe which slice of a tensor a task writes (its output tile) or
/// reads (its input requirement). Task-graph construction (paper §5.1 step 2)
/// intersects producer output rects with consumer input rects to decide which
/// task pairs share data and therefore need a dependency or a communication
/// task.
///
/// ```
/// use flexflow_tensor::Rect;
/// let a = Rect::new(&[0, 0], &[32, 64]);
/// let b = Rect::new(&[16, 0], &[48, 64]);
/// let i = a.intersection(&b).unwrap();
/// assert_eq!(i, Rect::new(&[16, 0], &[32, 64]));
/// assert_eq!(i.volume(), 16 * 64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    lo: [u64; MAX_DIMS],
    hi: [u64; MAX_DIMS],
    ndims: u8,
}

impl Rect {
    /// Creates a rect from inclusive lower bounds and exclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo` and `hi` have different lengths, are empty or longer
    /// than [`MAX_DIMS`], or if `lo[d] >= hi[d]` for any dimension (empty
    /// rects are not representable; absence of overlap is expressed by
    /// [`Rect::intersection`] returning `None`).
    pub fn new(lo: &[u64], hi: &[u64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "lo/hi rank mismatch");
        assert!(
            !lo.is_empty() && lo.len() <= MAX_DIMS,
            "rect rank must be in 1..={MAX_DIMS}"
        );
        for d in 0..lo.len() {
            assert!(
                lo[d] < hi[d],
                "empty interval in dim {d}: [{}, {})",
                lo[d],
                hi[d]
            );
        }
        let mut l = [0u64; MAX_DIMS];
        let mut h = [1u64; MAX_DIMS];
        l[..lo.len()].copy_from_slice(lo);
        h[..hi.len()].copy_from_slice(hi);
        Self {
            lo: l,
            hi: h,
            ndims: lo.len() as u8,
        }
    }

    /// The rect covering an entire shape.
    pub fn full(shape: &TensorShape) -> Self {
        let lo = vec![0u64; shape.ndims()];
        Self::new(&lo, shape.dims())
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.ndims as usize
    }

    /// Inclusive lower bounds.
    pub fn lo(&self) -> &[u64] {
        &self.lo[..self.ndims()]
    }

    /// Exclusive upper bounds.
    pub fn hi(&self) -> &[u64] {
        &self.hi[..self.ndims()]
    }

    /// Extent along dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.ndims()`.
    pub fn extent(&self, d: usize) -> u64 {
        assert!(d < self.ndims(), "dimension {d} out of range");
        self.hi[d] - self.lo[d]
    }

    /// Extents of all dimensions, as a shape-compatible vector.
    pub fn extents(&self) -> Vec<u64> {
        (0..self.ndims()).map(|d| self.extent(d)).collect()
    }

    /// Number of elements covered.
    pub fn volume(&self) -> u64 {
        (0..self.ndims()).map(|d| self.extent(d)).product()
    }

    /// Whether the two rects overlap in every dimension.
    ///
    /// # Panics
    ///
    /// Panics if ranks differ.
    pub fn intersects(&self, other: &Rect) -> bool {
        assert_eq!(self.ndims(), other.ndims(), "rect rank mismatch");
        (0..self.ndims()).all(|d| self.lo[d] < other.hi[d] && other.lo[d] < self.hi[d])
    }

    /// The overlapping region, or `None` when the rects are disjoint.
    ///
    /// # Panics
    ///
    /// Panics if ranks differ.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let n = self.ndims();
        let lo: Vec<u64> = (0..n).map(|d| self.lo[d].max(other.lo[d])).collect();
        let hi: Vec<u64> = (0..n).map(|d| self.hi[d].min(other.hi[d])).collect();
        Some(Rect::new(&lo, &hi))
    }

    /// Whether `other` lies entirely within `self`.
    ///
    /// # Panics
    ///
    /// Panics if ranks differ.
    pub fn contains(&self, other: &Rect) -> bool {
        assert_eq!(self.ndims(), other.ndims(), "rect rank mismatch");
        (0..self.ndims()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Returns a copy with dimension `d` replaced by the interval
    /// `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range or the interval is empty.
    pub fn with_dim(&self, d: usize, lo: u64, hi: u64) -> Rect {
        assert!(d < self.ndims(), "dimension {d} out of range");
        assert!(lo < hi, "empty interval in dim {d}: [{lo}, {hi})");
        let mut out = *self;
        out.lo[d] = lo;
        out.hi[d] = hi;
        out
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect(")?;
        for d in 0..self.ndims() {
            if d > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{},{})", self.lo[d], self.hi[d])?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_covers_shape() {
        let s = TensorShape::new(&[4, 8, 16]);
        let r = Rect::full(&s);
        assert_eq!(r.volume(), s.volume());
        assert_eq!(r.lo(), &[0, 0, 0]);
        assert_eq!(r.hi(), &[4, 8, 16]);
        assert_eq!(r.extents(), vec![4, 8, 16]);
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = Rect::new(&[0], &[4]);
        let b = Rect::new(&[4], &[8]);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn touching_rects_share_no_elements() {
        // Half-open semantics: [0,4) and [4,8) are adjacent, not overlapping.
        let a = Rect::new(&[0, 0], &[4, 10]);
        let b = Rect::new(&[4, 0], &[8, 10]);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = Rect::new(&[0, 0], &[6, 6]);
        let b = Rect::new(&[3, 3], &[9, 9]);
        assert_eq!(a.intersection(&b), b.intersection(&a));
        assert_eq!(a.intersection(&b).unwrap(), Rect::new(&[3, 3], &[6, 6]));
    }

    #[test]
    fn contains_checks_all_dims() {
        let outer = Rect::new(&[0, 0], &[10, 10]);
        let inner = Rect::new(&[2, 3], &[5, 7]);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
    }

    #[test]
    fn with_dim_replaces_interval() {
        let r = Rect::new(&[0, 0], &[10, 10]);
        let s = r.with_dim(1, 5, 8);
        assert_eq!(s.lo(), &[0, 5]);
        assert_eq!(s.hi(), &[10, 8]);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn rejects_empty_interval() {
        Rect::new(&[3], &[3]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn intersect_requires_same_rank() {
        let a = Rect::new(&[0], &[4]);
        let b = Rect::new(&[0, 0], &[4, 4]);
        a.intersects(&b);
    }

    #[test]
    fn debug_form_is_compact() {
        let r = Rect::new(&[1, 2], &[3, 4]);
        assert_eq!(format!("{r:?}"), "Rect([1,3), [2,4))");
    }
}
