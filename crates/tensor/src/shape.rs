//! Tensor extents and element types.

use std::fmt;

/// Maximum number of dimensions a tensor may have.
///
/// Four is enough for every operator in the paper's six benchmark DNNs
/// (`[sample, channel, height, width]` for 2-D CNNs, `[sample, channel,
/// length]` for 1-D ops and `[sample, channel]` for dense layers).
pub const MAX_DIMS: usize = 4;

/// Element type of a tensor.
///
/// The FlexFlow paper trains in fp32; we keep the enum open for the
/// half-precision and integer (embedding index) tensors that appear in the
/// model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// 32-bit IEEE-754 float (the default training precision in the paper).
    #[default]
    F32,
    /// 16-bit IEEE-754 float.
    F16,
    /// 32-bit signed integer (token indices for embedding lookups).
    I32,
}

impl DataType {
    /// Size of one element in bytes.
    ///
    /// ```
    /// use flexflow_tensor::DataType;
    /// assert_eq!(DataType::F32.size_bytes(), 4);
    /// assert_eq!(DataType::F16.size_bytes(), 2);
    /// ```
    pub const fn size_bytes(self) -> u64 {
        match self {
            DataType::F32 | DataType::I32 => 4,
            DataType::F16 => 2,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::F32 => write!(f, "f32"),
            DataType::F16 => write!(f, "f16"),
            DataType::I32 => write!(f, "i32"),
        }
    }
}

/// The extent of an n-dimensional tensor (`1 <= n <=` [`MAX_DIMS`]).
///
/// A shape stores its dimensions inline; copying it is cheap. Every dimension
/// must be at least 1.
///
/// ```
/// use flexflow_tensor::TensorShape;
/// let s = TensorShape::new(&[64, 3, 224, 224]);
/// assert_eq!(s.ndims(), 4);
/// assert_eq!(s.volume(), 64 * 3 * 224 * 224);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    dims: [u64; MAX_DIMS],
    ndims: u8,
    dtype: DataType,
}

impl TensorShape {
    /// Creates a new shape with element type [`DataType::F32`].
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, longer than [`MAX_DIMS`], or contains a
    /// zero extent.
    pub fn new(dims: &[u64]) -> Self {
        Self::with_dtype(dims, DataType::F32)
    }

    /// Creates a new shape with an explicit element type.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TensorShape::new`].
    pub fn with_dtype(dims: &[u64], dtype: DataType) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_DIMS,
            "tensor rank must be in 1..={MAX_DIMS}, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "tensor dimensions must be positive, got {dims:?}"
        );
        let mut buf = [1u64; MAX_DIMS];
        buf[..dims.len()].copy_from_slice(dims);
        Self {
            dims: buf,
            ndims: dims.len() as u8,
            dtype,
        }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.ndims as usize
    }

    /// The extents as a slice of length [`Self::ndims`].
    pub fn dims(&self) -> &[u64] {
        &self.dims[..self.ndims()]
    }

    /// Extent of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.ndims()`.
    pub fn dim(&self, d: usize) -> u64 {
        assert!(d < self.ndims(), "dimension {d} out of range");
        self.dims[d]
    }

    /// Element type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Total number of elements.
    pub fn volume(&self) -> u64 {
        self.dims().iter().product()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.volume() * self.dtype.size_bytes()
    }

    /// Returns a copy of this shape with dimension `d` replaced by `extent`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range or `extent` is zero.
    pub fn with_dim(&self, d: usize, extent: u64) -> Self {
        assert!(d < self.ndims(), "dimension {d} out of range");
        assert!(extent > 0, "extent must be positive");
        let mut out = *self;
        out.dims[d] = extent;
        out
    }
}

impl fmt::Debug for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TensorShape({:?}, {})", self.dims(), self.dtype)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basics() {
        let s = TensorShape::new(&[64, 1024]);
        assert_eq!(s.ndims(), 2);
        assert_eq!(s.dims(), &[64, 1024]);
        assert_eq!(s.volume(), 65536);
        assert_eq!(s.size_bytes(), 65536 * 4);
        assert_eq!(s.dim(0), 64);
    }

    #[test]
    fn shape_with_dtype() {
        let s = TensorShape::with_dtype(&[10, 20], DataType::F16);
        assert_eq!(s.size_bytes(), 200 * 2);
        assert_eq!(s.dtype(), DataType::F16);
    }

    #[test]
    fn shape_with_dim() {
        let s = TensorShape::new(&[8, 16, 32]);
        let t = s.with_dim(1, 4);
        assert_eq!(t.dims(), &[8, 4, 32]);
        // original untouched
        assert_eq!(s.dims(), &[8, 16, 32]);
    }

    #[test]
    #[should_panic(expected = "tensor rank")]
    fn shape_rejects_empty() {
        TensorShape::new(&[]);
    }

    #[test]
    #[should_panic(expected = "tensor rank")]
    fn shape_rejects_rank_5() {
        TensorShape::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn shape_rejects_zero_extent() {
        TensorShape::new(&[4, 0]);
    }

    #[test]
    fn display_forms() {
        let s = TensorShape::new(&[64, 3, 224, 224]);
        assert_eq!(format!("{s}"), "[64x3x224x224]");
        assert_eq!(format!("{}", DataType::I32), "i32");
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DataType::F32.size_bytes(), 4);
        assert_eq!(DataType::I32.size_bytes(), 4);
        assert_eq!(DataType::F16.size_bytes(), 2);
    }
}
