//! A stable 64-bit FNV-1a hasher for persisted content signatures.
//!
//! The op-graph and topology signatures (`flexflow-opgraph::signature`,
//! `Topology::signature`) key the strategy server's *on-disk* cache, so
//! they must never drift across Rust releases, platforms, or processes —
//! guarantees [`std::hash::DefaultHasher`] explicitly does not make. Both
//! crates hash through this one implementation so the primitive cannot
//! fork; this module lives in `flexflow-tensor` because it is the crate
//! at the bottom of the workspace DAG.

/// 64-bit FNV-1a with a fixed, documented seed, domain-separated by an
/// initial tag string.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher(u64);

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a hash over the given domain tag (e.g. `"flexflow.op.v1"`);
    /// distinct domains cannot collide by construction order alone.
    pub fn new(domain: &str) -> Self {
        let mut h = Self(Self::OFFSET);
        h.write_bytes(domain.as_bytes());
        h
    }

    /// Folds raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `u64` (little-endian bytes) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The final hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_fnv1a_reference_vectors() {
        // Classic FNV-1a test vectors (empty domain = plain FNV-1a).
        let h = StableHasher::new("");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new("");
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::new("");
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn domains_separate_and_u64s_differ_from_bytes_of_other_values() {
        assert_ne!(
            StableHasher::new("a").finish(),
            StableHasher::new("b").finish()
        );
        let mut x = StableHasher::new("d");
        x.write_u64(1);
        let mut y = StableHasher::new("d");
        y.write_u64(2);
        assert_ne!(x.finish(), y.finish());
    }
}
