//! Property-based tests for the partitioning invariants the SOAP machinery
//! relies on: tiles are disjoint, cover the shape exactly, and slicing +
//! scattering tiles reassembles a tensor bit-for-bit.

use flexflow_tensor::{partition, DenseTensor, Rect, TensorShape};
use proptest::prelude::*;

/// A shape together with a degree vector that evenly divides it.
fn shape_and_degrees() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    // Build each dimension as degree * chunk so divisibility holds by
    // construction.
    prop::collection::vec((1u64..=4, 1u64..=6), 1..=4).prop_map(|pairs| {
        let degrees: Vec<u64> = pairs.iter().map(|(d, _)| *d).collect();
        let dims: Vec<u64> = pairs.iter().map(|(d, c)| d * c).collect();
        (dims, degrees)
    })
}

proptest! {
    #[test]
    fn tiles_are_disjoint_and_cover((dims, degrees) in shape_and_degrees()) {
        let shape = TensorShape::new(&dims);
        let tiles = partition::tile_all(&shape, &degrees).unwrap();
        let expected: u64 = degrees.iter().product();
        prop_assert_eq!(tiles.len() as u64, expected);

        // Equal sizes (paper §4: equal-size partitions).
        let v0 = tiles[0].volume();
        for t in &tiles {
            prop_assert_eq!(t.volume(), v0);
        }

        // Disjoint.
        for i in 0..tiles.len() {
            for j in (i + 1)..tiles.len() {
                prop_assert!(!tiles[i].intersects(&tiles[j]));
            }
        }

        // Cover.
        let total: u64 = tiles.iter().map(Rect::volume).sum();
        prop_assert_eq!(total, shape.volume());
    }

    #[test]
    fn unflatten_roundtrips((dims, degrees) in shape_and_degrees()) {
        let shape = TensorShape::new(&dims);
        let tiles = partition::tile_all(&shape, &degrees).unwrap();
        for (flat, tile) in tiles.iter().enumerate() {
            let idx = partition::unflatten_index(&degrees, flat as u64);
            let again = partition::tile(&shape, &degrees, &idx).unwrap();
            prop_assert_eq!(&again, tile);
        }
    }

    #[test]
    fn slice_scatter_reassembles((dims, degrees) in shape_and_degrees()) {
        let shape = TensorShape::new(&dims);
        let t = DenseTensor::from_fn(shape, |i| i as f32 * 0.5 - 3.0);
        let tiles = partition::tile_all(&shape, &degrees).unwrap();
        let mut rebuilt = DenseTensor::zeros(shape);
        for rect in &tiles {
            rebuilt.scatter(rect, &t.slice(rect));
        }
        prop_assert!(rebuilt.approx_eq(&t, 0.0));
    }

    #[test]
    fn intersection_volume_is_bounded(
        (dims, degrees) in shape_and_degrees(),
        (dims2, degrees2) in shape_and_degrees(),
    ) {
        // Intersections of arbitrary rects never exceed either operand's
        // volume and are contained in both.
        prop_assume!(dims.len() == dims2.len());
        let a = Rect::full(&TensorShape::new(&dims));
        let degree_tiles = partition::tile_all(&TensorShape::new(&dims), &degrees).unwrap();
        let _ = degrees2; // degree vector for the second shape is unused
        let b = Rect::full(&TensorShape::new(&dims2));
        for t in &degree_tiles {
            if let Some(i) = t.intersection(&b) {
                prop_assert!(i.volume() <= t.volume());
                prop_assert!(i.volume() <= b.volume());
                prop_assert!(t.contains(&i));
                prop_assert!(b.contains(&i));
                prop_assert!(a.contains(&i));
            }
        }
    }
}
