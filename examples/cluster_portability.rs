//! Portability (paper §3.1): "a parallelization strategy fine-tuned for
//! one cluster may behave poorly on other clusters". This example searches
//! a strategy for Inception-v3 on the NVLink-rich P100 node, then moves it
//! unchanged onto the PCIe-constrained K80 node and compares against a
//! strategy searched natively there.
//!
//! ```sh
//! cargo run --release --example cluster_portability
//! ```

use flexflow::core::sim::{simulate_full, SimConfig};
use flexflow::core::taskgraph::TaskGraph;
use flexflow::core::{Budget, McmcOptimizer, Strategy};
use flexflow::costmodel::MeasuredCostModel;
use flexflow::device::clusters;
use flexflow::opgraph::zoo;

fn main() {
    let graph = zoo::inception_v3(64);
    let p100 = clusters::p100_cluster(1);
    let k80 = clusters::k80_cluster(1);
    let cost = MeasuredCostModel::paper_default();
    let cfg = SimConfig::default();
    let evals = 1200;

    let cost_on = |topo: &flexflow::device::Topology, s: &Strategy| {
        simulate_full(&TaskGraph::build(&graph, topo, s, &cost, &cfg)).makespan_us()
    };

    // Search natively on each cluster.
    let mut opt = McmcOptimizer::new(21);
    let on_p100 = opt.search(
        &graph,
        &p100,
        &cost,
        &[Strategy::data_parallel(&graph, &p100)],
        Budget::evaluations(evals),
        cfg,
    );
    let mut opt = McmcOptimizer::new(22);
    let on_k80 = opt.search(
        &graph,
        &k80,
        &cost,
        &[Strategy::data_parallel(&graph, &k80)],
        Budget::evaluations(evals),
        cfg,
    );

    // Transplant the P100-tuned strategy onto the K80 node. Device ids
    // line up (4 GPUs each), so the strategy is structurally valid — just
    // tuned for the wrong interconnect.
    let transplanted = on_p100.best.clone();

    println!("Inception-v3, 4 GPUs:");
    println!(
        "  searched on P100, run on P100: {:>9.2} ms",
        on_p100.best_cost_us / 1e3
    );
    println!(
        "  searched on K80,  run on K80:  {:>9.2} ms",
        on_k80.best_cost_us / 1e3
    );
    println!(
        "  searched on P100, run on K80:  {:>9.2} ms  <- transplanted",
        cost_on(&k80, &transplanted) / 1e3
    );
    println!(
        "  K80 data parallelism:          {:>9.2} ms",
        cost_on(&k80, &Strategy::data_parallel(&graph, &k80)) / 1e3
    );
    let native = on_k80.best_cost_us;
    let moved = cost_on(&k80, &transplanted);
    println!(
        "\nnative K80 search beats the transplant by {:.2}x — FlexFlow re-tunes\n\
         per cluster automatically, no application change needed (§3.1).",
        moved / native
    );
}
