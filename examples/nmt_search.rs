//! The paper's flagship workload: find a parallelization strategy for the
//! NMT model (encoder/decoder LSTMs + attention + big softmax) on a
//! 4-GPU P100 node, then report the per-layer structure FlexFlow found —
//! the Fig. 14 scenario.
//!
//! ```sh
//! cargo run --release --example nmt_search
//! ```

use flexflow::baselines::expert;
use flexflow::core::metrics::SimMetrics;
use flexflow::core::sim::{simulate_full, SimConfig};
use flexflow::core::taskgraph::TaskGraph;
use flexflow::core::{Budget, ParallelSearch, SearchRequest, Strategy};
use flexflow::costmodel::MeasuredCostModel;
use flexflow::device::clusters;
use flexflow::opgraph::zoo;

fn report(name: &str, m: &SimMetrics) {
    println!(
        "{name:<18} {:>9.2} ms/iter  {:>8.1} MB moved  ({:.1} MB sync)",
        m.makespan_us / 1e3,
        m.total_comm_bytes() as f64 / 1e6,
        m.sync_bytes as f64 / 1e6
    );
}

fn main() {
    // Short unroll keeps the example snappy; bump for the full model.
    let unroll = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let graph = zoo::nmt(64, unroll);
    let topo = clusters::p100_cluster(1);
    let cost = MeasuredCostModel::paper_default();
    let cfg = SimConfig::default();
    println!(
        "NMT with unroll {unroll}: {} operators, {:.1}M parameters\n",
        graph.len(),
        graph.total_params() as f64 / 1e6
    );

    let contenders: Vec<(&str, Strategy)> = vec![
        ("data parallelism", Strategy::data_parallel(&graph, &topo)),
        ("expert (GNMT)", expert::strategy(&graph, &topo)),
    ];
    for (name, s) in &contenders {
        let tg = TaskGraph::build(&graph, &topo, s, &cost, &cfg);
        let state = simulate_full(&tg);
        report(name, &SimMetrics::collect(&tg, &state));
    }

    // The parallel driver: one MCMC chain per hardware thread, seeded
    // deterministically, exchanging bests every 256 evaluations.
    let opt = ParallelSearch::new(7);
    println!(
        "searching with {} parallel chain(s), exchange every {} evals...",
        opt.chains, opt.exchange_every
    );
    let initials: Vec<Strategy> = contenders.into_iter().map(|(_, s)| s).collect();
    let result = SearchRequest::new(7).chains(opt.chains).run(
        &graph,
        &topo,
        &cost,
        &initials,
        Budget::evaluations(2000),
        cfg,
    );
    println!(
        "evaluated {} proposals in {:.1}s (per chain: {:?})",
        result.evals, result.elapsed_seconds, result.chain_evals
    );
    let tg = TaskGraph::build(&graph, &topo, &result.best, &cost, &cfg);
    let state = simulate_full(&tg);
    report("FlexFlow", &SimMetrics::collect(&tg, &state));

    // Show what it did to the interesting layers.
    println!("\nper-layer choices (first timestep of each layer):");
    for probe in [
        "enc_embed_t0",
        "enc_lstm0_t0",
        "dec_lstm1_t0",
        "attn_t0",
        "nmt_proj_t0",
    ] {
        if let Some(id) = graph.ids().find(|&i| graph.op(i).name() == probe) {
            println!("  {:<14} {}", probe, result.best.config(id));
        }
    }
}
