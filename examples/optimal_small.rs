//! Search-quality check on a small execution (paper §8.4): exhaustively
//! establish the optimal strategy of the canonical space for LeNet on
//! four devices, and verify the MCMC search finds it.
//!
//! ```sh
//! cargo run --release --example optimal_small
//! ```

use flexflow::core::exhaustive::{canonical_space_size, check_local_optimality, ExhaustiveSearch};
use flexflow::core::soap::ConfigSpace;
use flexflow::core::{Budget, McmcOptimizer, SimConfig, Strategy};
use flexflow::costmodel::MeasuredCostModel;
use flexflow::device::clusters;
use flexflow::opgraph::zoo;

fn main() {
    let graph = zoo::lenet(64);
    let topo = clusters::uniform_cluster(1, 4, 16.0, 4.0);
    let cost = MeasuredCostModel::paper_default();
    let cfg = SimConfig::default();

    println!(
        "LeNet on 4 devices: canonical strategy space has ~1e{:.1} strategies",
        canonical_space_size(&graph, &topo).log10()
    );

    // MCMC restricted to the enumerable (canonical) space.
    let mut opt = McmcOptimizer::new(84);
    opt.space = ConfigSpace::Canonical;
    let mcmc = opt.search(
        &graph,
        &topo,
        &cost,
        &[Strategy::data_parallel(&graph, &topo)],
        Budget::evaluations(4000),
        cfg,
    );
    println!(
        "MCMC best: {:.2} ms after {} proposals",
        mcmc.best_cost_us / 1e3,
        mcmc.evals
    );

    // Branch-and-bound proof, warm-started by the MCMC incumbent.
    let outcome =
        ExhaustiveSearch::default().search(&graph, &topo, &cost, cfg, Some(mcmc.best.clone()));
    let (optimal, opt_cost) = outcome.best();
    println!(
        "exhaustive search: {:.2} ms ({}, proven optimal: {})",
        opt_cost / 1e3,
        match &outcome {
            flexflow::core::exhaustive::ExhaustiveOutcome::Optimal { nodes, .. } =>
                format!("{nodes} DFS nodes"),
            flexflow::core::exhaustive::ExhaustiveOutcome::BudgetExhausted { nodes, .. } =>
                format!("budget hit at {nodes} nodes"),
        },
        outcome.is_proven_optimal()
    );
    if outcome.is_proven_optimal() {
        let gap = mcmc.best_cost_us / opt_cost - 1.0;
        println!(
            "MCMC gap to optimum: {:.3}% (paper: MCMC finds the optimum)",
            gap * 100.0
        );
    }

    // Local optimality of the MCMC result against every neighbor.
    let (is_local, witness) = check_local_optimality(&graph, &topo, &cost, cfg, &mcmc.best);
    println!("MCMC result is a local optimum: {is_local}");
    if let Some((op, _, c)) = witness {
        println!("  better neighbor exists at op {op}: {:.2} ms", c / 1e3);
    }
    let _ = optimal;
}
