//! Quickstart: define a DNN, describe a cluster, and let FlexFlow find a
//! parallelization strategy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flexflow::core::{Budget, McmcOptimizer, SimConfig, Strategy};
use flexflow::costmodel::MeasuredCostModel;
use flexflow::device::clusters;
use flexflow::opgraph::{OpGraph, OpKind};
use flexflow::tensor::TensorShape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The operator graph: a small MLP classifier (batch 64).
    let mut graph = OpGraph::new("quickstart-mlp");
    let x = graph.add_input("x", TensorShape::new(&[64, 784]));
    let h1 = graph.add_op(OpKind::Linear { out_features: 1024 }, &[x], "fc1")?;
    let r1 = graph.add_op(OpKind::Relu, &[h1], "relu1")?;
    let h2 = graph.add_op(OpKind::Linear { out_features: 1024 }, &[r1], "fc2")?;
    let r2 = graph.add_op(OpKind::Relu, &[h2], "relu2")?;
    let y = graph.add_op(OpKind::Linear { out_features: 10 }, &[r2], "fc3")?;
    graph.add_op(OpKind::Softmax, &[y], "softmax")?;

    // 2. The device topology: one node with four P100-class GPUs.
    let topo = clusters::p100_cluster(1);
    println!("{}", topo.describe());

    // 3. The cost oracle (measure-once per op type and size, paper A1).
    let cost = MeasuredCostModel::paper_default();

    // 4. Baseline: plain data parallelism.
    let dp = Strategy::data_parallel(&graph, &topo);
    let dp_cost =
        flexflow::core::sim::Simulator::new(&graph, &topo, &cost, SimConfig::default(), dp.clone())
            .cost_us();
    println!("data parallelism: {dp_cost:.1} us per iteration");

    // 5. Search the SOAP space.
    let mut optimizer = McmcOptimizer::new(42);
    let result = optimizer.search(
        &graph,
        &topo,
        &cost,
        &[dp],
        Budget::evaluations(2000),
        SimConfig::default(),
    );
    println!(
        "FlexFlow best: {:.1} us per iteration ({:.2}x speedup, {} proposals)",
        result.best_cost_us,
        dp_cost / result.best_cost_us,
        result.evals
    );

    // 6. Inspect the discovered strategy.
    println!("\ndiscovered strategy:\n{}", result.best.describe(&graph));
    Ok(())
}
