//! Execute a discovered strategy for real: the dataflow runtime runs the
//! partitioned operators on actual `f32` buffers with one thread per
//! device, and the result must match a serial execution exactly — the
//! paper's §7 claim that any SOAP strategy is executable at per-operation
//! granularity.
//!
//! ```sh
//! cargo run --release --example runtime_execution
//! ```

use flexflow::core::{Budget, McmcOptimizer, SimConfig, Strategy};
use flexflow::costmodel::MeasuredCostModel;
use flexflow::device::clusters;
use flexflow::opgraph::zoo;
use flexflow::runtime::dataflow;

fn main() {
    let graph = zoo::lenet(16);
    let topo = clusters::uniform_cluster(1, 4, 16.0, 4.0);
    let cost = MeasuredCostModel::paper_default();

    // Find a non-trivial strategy.
    let mut opt = McmcOptimizer::new(3);
    let result = opt.search(
        &graph,
        &topo,
        &cost,
        &[Strategy::data_parallel(&graph, &topo)],
        Budget::evaluations(600),
        SimConfig::default(),
    );
    println!(
        "strategy found ({:.2} ms simulated); executing it for real on {} device threads",
        result.best_cost_us / 1e3,
        topo.num_devices()
    );

    // Run it on real data, and serially as the reference.
    let inputs = dataflow::synthetic_inputs(&graph, 2024);
    let serial = dataflow::execute_serial(&graph, &inputs, 99);
    let report = dataflow::execute_strategy(&graph, &topo, &result.best, &inputs, 99);

    println!(
        "cross-device traffic: {} fetches, {:.1} KB",
        report.cross_device_fetches,
        report.cross_device_bytes as f64 / 1e3
    );
    for (op, tensor) in &report.outputs {
        let reference = &serial[op];
        let diff = tensor.max_abs_diff(reference);
        println!(
            "output {:<10} shape {} max |diff| vs serial = {:e}",
            graph.op(*op).name(),
            tensor.shape(),
            diff
        );
        assert!(diff < 1e-4, "parallel execution diverged!");
    }
    println!("parallel execution matches the serial reference.");
}
