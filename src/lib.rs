//! FlexFlow reproduction — facade crate.
//!
//! Re-exports the workspace crates under one roof. See the README for the
//! architecture overview and `DESIGN.md` for the per-experiment index.

#![warn(missing_docs)]
pub use flexflow_baselines as baselines;
pub use flexflow_core as core;
pub use flexflow_costmodel as costmodel;
pub use flexflow_device as device;
pub use flexflow_opgraph as opgraph;
pub use flexflow_runtime as runtime;
pub use flexflow_server as server;
pub use flexflow_tensor as tensor;
