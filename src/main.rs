//! `flexflow` — command-line interface to the reproduction.
//!
//! ```text
//! flexflow models
//! flexflow search <model> [--gpus N] [--cluster p100|k80|PRESET] [--evals N] [--seed N]
//!                         [--out FILE] [--chains K] [--exchange-every N] [--microbatches M]
//!                         [--param-sync MODE] [--recompute search|off] [--mem-budget MB|device]
//!                         [--warm FILE] [--legacy] [--verbose]
//! flexflow simulate <model> [--gpus N] [--cluster p100|k80|PRESET] [--strategy FILE]
//!                           [--microbatches M] [--param-sync MODE] [--recompute off]
//!                           [--mem-budget MB|device]
//! flexflow baselines <model> [--gpus N] [--cluster p100|k80|PRESET]
//! flexflow serve [--socket PATH | --tcp HOST:PORT | --oneshot] [--workers N] [--cache FILE]
//!                [--microbatches M] [--shards N] [--cache-entries N] [--cache-bytes B]
//!                [--max-conns N] [--no-polish]
//! ```
//!
//! `search` runs the parallel multi-chain driver by default (one chain
//! per available hardware thread; fix `--chains` and `--seed` for a
//! reproducible result). `--legacy` forces the sequential single-chain
//! reference driver, which `--chains 1` reproduces bit-for-bit — CI
//! diffs the two; combining `--legacy` with the multi-chain knobs
//! (`--chains > 1`, `--exchange-every`) is rejected as contradictory.
//! `--microbatches M` enables pipeline parallelism: the search may split
//! the batch into up to `M` microbatches and pipeline operator stages
//! across devices. `--warm FILE` seeds every chain from a previously
//! exported strategy instead of the data-parallel/expert defaults, so a
//! pipelined refinement of a known-good strategy can never end worse
//! than it.
//!
//! `--param-sync MODE` controls per-layer parameter synchronization.
//! `search` opens the sync axis to the optimizer (proposals may retune
//! each layer between all-reduce, ZeRO-1 sharding and parameter-server
//! placement); a concrete mode — `allreduce`, `zero1:K` (K shards) or
//! `ps:D` (server on device D) — overrides the default on every initial
//! candidate and still lets the search retune per layer. Under
//! `simulate`, a concrete mode is applied to every layer of the
//! simulated strategy (`search` is rejected there: nothing searches).
//!
//! `--recompute search` opens the activation-recomputation axis: the
//! search may mark individual operators to drop their stored forward
//! activations and re-run the forward pass before the backward pass,
//! trading FLOPs for peak memory. `--mem-budget` sets a per-device peak
//! memory budget — a size in MB applied uniformly, or the word `device`
//! for each device kind's hardware default (16 GB P100, 12 GB K80,
//! 40 GB A100). Under `search`, OOM-infeasible proposals are penalized so
//! the search steers toward strategies that fit; under `simulate`, the
//! strategy's peak per-device memory is reported and an over-budget
//! strategy exits nonzero with the offending device named.
//!
//! `--cluster` takes either a flat paper cluster kind (`p100`, `k80` —
//! sized by `--gpus`, which must be a whole number of nodes) or a
//! hierarchical preset name like `p100x64-ib` / `a100x256-ib` (NVLink
//! islands joined by an InfiniBand spine; the name fixes the device
//! count, so `--gpus` is rejected next to a preset).
//!
//! `serve` runs the strategy-serving daemon: line-delimited JSON requests
//! (see `flexflow_server::protocol`) answered from a sharded,
//! LRU-bounded content-addressed strategy cache with warm-started search
//! on near misses. `--oneshot` reads requests from stdin and writes
//! responses to stdout (the test and scripting mode); `--tcp HOST:PORT`
//! runs the nonblocking TCP front end (connection-limited with in-band
//! `busy` backpressure); otherwise the daemon listens on a Unix socket.
//! `--cache-entries`/`--cache-bytes` bound the cache (LRU eviction);
//! `--shards` sets the lock/file sharding. Long-lived front ends run a
//! background polish daemon that re-searches the hottest cache entries
//! at escalating budgets during idle cycles (`--no-polish` disables it).

use flexflow::baselines::{expert, model_parallel, optcnn};
use flexflow::core::memory;
use flexflow::core::metrics::SimMetrics;
use flexflow::core::sim::{simulate_full, SimConfig};
use flexflow::core::taskgraph::TaskGraph;
use flexflow::core::{
    default_chains, strategy_io, Budget, McmcOptimizer, ParamSync, SearchRequest, SearchResult,
    Strategy,
};
use flexflow::costmodel::MeasuredCostModel;
use flexflow::device::{clusters, DeviceKind, Topology};
use flexflow::opgraph::{zoo, OpGraph};
use flexflow::server::{CacheBounds, ServerHandle};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  flexflow models\n  flexflow search <model> [--gpus N] \
         [--cluster p100|k80|PRESET] [--evals N] [--seed N] [--out FILE]\n                \
         [--chains K] [--exchange-every N] [--microbatches M] [--warm FILE]\n            \
         [--param-sync search|allreduce|zero1:K|ps:D] [--recompute search|off]\n         \
         [--mem-budget MB|device] [--legacy] [--verbose]\n  flexflow \
         simulate <model> [--gpus N] [--cluster p100|k80|PRESET] [--strategy FILE]\n     \
         [--microbatches M] [--param-sync allreduce|zero1:K|ps:D] [--recompute off]\n    \
         [--mem-budget MB|device]\n  flexflow \
         baselines <model> [--gpus N] [--cluster p100|k80|PRESET]\n  flexflow serve \
         [--socket PATH | --tcp HOST:PORT | --oneshot] [--workers N] [--cache FILE]\n         \
         [--microbatches M] [--shards N] [--cache-entries N] [--cache-bytes B]\n         \
         [--max-conns N] [--no-polish]\n\
         \npresets are hierarchical clusters named <kind>x<gpus>-ib, e.g. {}",
        clusters::PRESET_EXAMPLES.join(", ")
    );
    ExitCode::from(2)
}

/// What `--cluster` named: a flat paper cluster kind sized by `--gpus`,
/// or a hierarchical preset (`<kind>x<gpus>-ib`) that fixes its own size.
enum ClusterSpec {
    Flat(DeviceKind),
    Preset(String),
}

impl ClusterSpec {
    fn label(&self) -> String {
        match self {
            ClusterSpec::Flat(kind) => kind.to_string(),
            ClusterSpec::Preset(name) => name.clone(),
        }
    }
}

struct Options {
    model: String,
    gpus: usize,
    cluster: ClusterSpec,
    evals: u64,
    seed: u64,
    out: Option<String>,
    strategy: Option<String>,
    verbose: bool,
    chains: usize,
    exchange_every: u64,
    legacy: bool,
    /// `--microbatches M`: `None` when the flag was absent (so `simulate`
    /// can tell "default off" from an explicit 1), capped max for search.
    microbatches: Option<u64>,
    /// `--param-sync MODE`: `None` when absent (pre-PR8 behaviour).
    param_sync: Option<ParamSyncFlag>,
    /// `--warm FILE`: strategy file seeding the search.
    warm: Option<String>,
    /// `--recompute search|off`: `None` when absent (pre-PR9 behaviour).
    recompute: Option<RecomputeFlag>,
    /// `--mem-budget MB|device`: `None` when absent (unconstrained).
    mem_budget: Option<MemBudgetFlag>,
}

/// What `--param-sync` asked for.
#[derive(Clone, Copy)]
enum ParamSyncFlag {
    /// Open the sync axis to the optimizer without fixing a default.
    Search,
    /// Override every layer's default mode (the axis still opens under
    /// `search`; `simulate` applies it verbatim).
    Fixed(ParamSync),
}

/// What `--recompute` asked for.
#[derive(Clone, Copy, PartialEq)]
enum RecomputeFlag {
    /// Open the recomputation axis to the optimizer.
    Search,
    /// Keep the axis closed; under `simulate`, additionally strip any
    /// recompute bits the strategy file carries.
    Off,
}

/// What `--mem-budget` asked for.
#[derive(Clone, Copy)]
enum MemBudgetFlag {
    /// A uniform per-device budget in MB.
    UniformMb(u64),
    /// Each device kind's hardware default capacity.
    DeviceDefaults,
}

impl MemBudgetFlag {
    fn build(self, topo: &Topology) -> memory::MemBudget {
        match self {
            MemBudgetFlag::UniformMb(mb) => memory::MemBudget::uniform_mb(topo, mb),
            MemBudgetFlag::DeviceDefaults => memory::MemBudget::device_defaults(topo),
        }
    }
}

/// Bytes in binary MB, matching [`memory::OomViolation`]'s rendering.
fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 20) as f64
}

fn parse(args: &[String]) -> Option<Options> {
    let mut o = Options {
        model: args.first()?.clone(),
        gpus: 4,
        cluster: ClusterSpec::Flat(DeviceKind::P100),
        evals: 2000,
        seed: 42,
        out: None,
        strategy: None,
        verbose: false,
        chains: default_chains(),
        exchange_every: 256,
        legacy: false,
        microbatches: None,
        param_sync: None,
        warm: None,
        recompute: None,
        mem_budget: None,
    };
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut i = 1;
    while i + 1 < args.len() + 1 {
        if i >= args.len() {
            break;
        }
        let key = args[i].clone();
        if key == "--verbose" {
            o.verbose = true;
            i += 1;
            continue;
        }
        if key == "--legacy" {
            o.legacy = true;
            i += 1;
            continue;
        }
        if !key.starts_with("--") || i + 1 >= args.len() {
            eprintln!("unexpected argument {key:?}");
            return None;
        }
        flags.insert(key, args[i + 1].clone());
        i += 2;
    }
    if let Some(v) = flags.get("--gpus") {
        o.gpus = v.parse().ok()?;
    }
    if let Some(v) = flags.get("--cluster") {
        o.cluster = match v.as_str() {
            "p100" => ClusterSpec::Flat(DeviceKind::P100),
            "k80" => ClusterSpec::Flat(DeviceKind::K80),
            // Anything else must be a hierarchical preset; validate it now
            // so a typo fails at the flag, not deep inside a subcommand.
            other => match clusters::preset(other) {
                Ok(topo) => {
                    if flags.contains_key("--gpus") {
                        eprintln!(
                            "--cluster {other} fixes the device count at {}; \
                             --gpus is contradictory next to a preset",
                            topo.num_devices()
                        );
                        return None;
                    }
                    o.gpus = topo.num_devices();
                    ClusterSpec::Preset(other.to_string())
                }
                Err(e) => {
                    eprintln!("{e}");
                    return None;
                }
            },
        };
    }
    if let Some(v) = flags.get("--evals") {
        o.evals = v.parse().ok()?;
    }
    if let Some(v) = flags.get("--seed") {
        o.seed = v.parse().ok()?;
    }
    if let Some(v) = flags.get("--chains") {
        o.chains = v.parse().ok()?;
        if o.chains == 0 {
            eprintln!("--chains must be at least 1");
            return None;
        }
    }
    if let Some(v) = flags.get("--exchange-every") {
        o.exchange_every = v.parse().ok()?;
    }
    if let Some(v) = flags.get("--microbatches") {
        let m: u64 = v.parse().ok()?;
        if m == 0 {
            eprintln!("--microbatches must be at least 1");
            return None;
        }
        o.microbatches = Some(m);
    }
    if let Some(v) = flags.get("--param-sync") {
        o.param_sync = Some(if v == "search" {
            ParamSyncFlag::Search
        } else {
            match ParamSync::parse(v) {
                Ok(mode) => ParamSyncFlag::Fixed(mode),
                Err(e) => {
                    eprintln!("--param-sync: {e}");
                    return None;
                }
            }
        });
    }
    if let Some(v) = flags.get("--recompute") {
        o.recompute = Some(match v.as_str() {
            "search" => RecomputeFlag::Search,
            "off" => RecomputeFlag::Off,
            other => {
                eprintln!("--recompute must be \"search\" or \"off\", got {other:?}");
                return None;
            }
        });
    }
    if let Some(v) = flags.get("--mem-budget") {
        o.mem_budget = Some(if v == "device" {
            MemBudgetFlag::DeviceDefaults
        } else {
            match v.parse::<u64>() {
                Ok(mb) if mb >= 1 => MemBudgetFlag::UniformMb(mb),
                _ => {
                    eprintln!(
                        "--mem-budget takes a size in MB (at least 1) or the word \
                         \"device\", got {v:?}"
                    );
                    return None;
                }
            }
        });
    }
    // Contradictory combinations are rejected instead of silently
    // picking a winner: the legacy sequential driver has exactly one
    // chain and no exchange protocol, so multi-chain knobs next to
    // --legacy mean the caller is confused about which driver runs.
    if o.legacy {
        if flags.contains_key("--chains") && o.chains > 1 {
            eprintln!(
                "--legacy runs the sequential single-chain driver; \
                 it cannot honour --chains {} (drop one of the flags)",
                o.chains
            );
            return None;
        }
        if flags.contains_key("--exchange-every") {
            eprintln!(
                "--legacy runs the sequential driver, which has no \
                 best-strategy exchange; --exchange-every is contradictory"
            );
            return None;
        }
    }
    o.out = flags.get("--out").cloned();
    o.strategy = flags.get("--strategy").cloned();
    o.warm = flags.get("--warm").cloned();
    Some(o)
}

/// Builds the workload and the cluster, turning every sizing error
/// (ragged `--gpus`, zero devices, A100 without a preset) into a
/// printable message instead of a panic.
fn build(o: &Options) -> Result<(OpGraph, Topology), String> {
    let batch = if o.model == "alexnet" { 256 } else { 64 };
    let topo = match &o.cluster {
        ClusterSpec::Flat(kind) => clusters::try_paper_cluster(*kind, o.gpus)?,
        ClusterSpec::Preset(name) => clusters::preset(name)?,
    };
    Ok((zoo::by_name(&o.model, batch), topo))
}

/// Reads and imports a strategy file, turning every failure mode (I/O,
/// malformed JSON, shape/config mismatch) into a printable error.
fn load_strategy(path: &str, graph: &OpGraph, topo: &Topology) -> Result<Strategy, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let dump: strategy_io::StrategyDump =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not a strategy file: {e}"))?;
    strategy_io::import(graph, topo, &dump).map_err(|e| e.to_string())
}

/// The `serve` subcommand: parses its own flag set and runs the daemon.
fn serve(args: &[String]) -> ExitCode {
    let mut workers = 2usize;
    let mut cache: Option<String> = None;
    let mut socket = "flexflow.sock".to_string();
    let mut tcp: Option<String> = None;
    let mut oneshot = false;
    let mut microbatches = 1u64;
    let mut shards = 8usize;
    let mut cache_entries: Option<usize> = None;
    let mut cache_bytes: Option<u64> = None;
    let mut max_conns = 64usize;
    let mut no_polish = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--oneshot" => {
                oneshot = true;
                i += 1;
            }
            "--no-polish" => {
                no_polish = true;
                i += 1;
            }
            key @ ("--workers" | "--cache" | "--socket" | "--tcp" | "--microbatches"
            | "--shards" | "--cache-entries" | "--cache-bytes" | "--max-conns") => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{key} needs a value");
                    return ExitCode::from(2);
                };
                match key {
                    "--workers" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => workers = n,
                        _ => {
                            eprintln!("--workers must be a positive integer, got {value:?}");
                            return ExitCode::from(2);
                        }
                    },
                    "--cache" => cache = Some(value.clone()),
                    "--tcp" => tcp = Some(value.clone()),
                    // Same bounds as the protocol's "microbatches" field:
                    // an unbounded server-side floor would overflow the
                    // cache key's microbatch component and conflate
                    // distinct caps into one class.
                    "--microbatches" => match value.parse::<u64>() {
                        Ok(m)
                            if (1..=flexflow::server::protocol::MAX_MICROBATCHES).contains(&m) =>
                        {
                            microbatches = m;
                        }
                        _ => {
                            eprintln!(
                                "--microbatches must be in 1..={}, got {value:?}",
                                flexflow::server::protocol::MAX_MICROBATCHES
                            );
                            return ExitCode::from(2);
                        }
                    },
                    "--shards" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => shards = n,
                        _ => {
                            eprintln!("--shards must be a positive integer, got {value:?}");
                            return ExitCode::from(2);
                        }
                    },
                    "--cache-entries" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => cache_entries = Some(n),
                        _ => {
                            eprintln!("--cache-entries must be a positive integer, got {value:?}");
                            return ExitCode::from(2);
                        }
                    },
                    "--cache-bytes" => match value.parse::<u64>() {
                        Ok(n) if n >= 1 => cache_bytes = Some(n),
                        _ => {
                            eprintln!("--cache-bytes must be a positive integer, got {value:?}");
                            return ExitCode::from(2);
                        }
                    },
                    "--max-conns" => match value.parse::<usize>() {
                        Ok(n) if n >= 1 => max_conns = n,
                        _ => {
                            eprintln!("--max-conns must be a positive integer, got {value:?}");
                            return ExitCode::from(2);
                        }
                    },
                    _ => socket = value.clone(),
                }
                i += 2;
            }
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    if tcp.is_some() && oneshot {
        eprintln!("--tcp and --oneshot are contradictory: pick one front end");
        return ExitCode::from(2);
    }
    let mut bounds = CacheBounds::unbounded();
    if let Some(n) = cache_entries {
        bounds.max_entries = n;
    }
    if let Some(b) = cache_bytes {
        bounds.max_bytes = b;
    }
    let mut builder = ServerHandle::builder()
        .workers(workers)
        .default_microbatches(microbatches)
        .shards(shards)
        .cache_bounds(bounds)
        .max_connections(max_conns);
    if let Some(path) = &cache {
        builder = builder.cache_path(path);
    }
    // The polish daemon spends idle worker cycles re-searching hot
    // entries; it only makes sense for a long-lived front end.
    if !oneshot && !no_polish {
        builder = builder.polish(flexflow::server::PolishConfig::default());
    }
    let mut handle = match &tcp {
        Some(addr) => {
            eprintln!("flexflow serve: listening on tcp {addr} ({workers} workers)");
            builder.tcp(addr.clone()).build()
        }
        None if !oneshot => {
            eprintln!("flexflow serve: listening on {socket} ({workers} workers)");
            builder.socket(&socket).build()
        }
        None => builder.build(),
    };
    let result = if oneshot {
        handle.run_batch(std::io::stdin().lock(), std::io::stdout().lock())
    } else {
        handle.run()
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report(label: &str, graph: &OpGraph, topo: &Topology, s: &Strategy) {
    let cost = MeasuredCostModel::paper_default();
    let tg = TaskGraph::build(graph, topo, s, &cost, &SimConfig::default());
    let state = simulate_full(&tg);
    let m = SimMetrics::collect(&tg, &state);
    let batch = graph.op(graph.ids().next().unwrap()).output_shape().dim(0);
    println!(
        "{label:<18} {:>10.2} ms/iter  {:>10.1} samples/s  {:>8.1} MB moved",
        m.makespan_us / 1e3,
        m.throughput(batch),
        m.total_comm_bytes() as f64 / 1e6
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "models" => {
            println!("{:<14} {:<55} {:<20}", "name", "description", "dataset");
            for m in zoo::model_metas() {
                println!("{:<14} {:<55} {:<20}", m.name, m.description, m.dataset);
            }
            ExitCode::SUCCESS
        }
        "search" => {
            let Some(o) = parse(&args[1..]) else {
                return usage();
            };
            let (graph, topo) = match build(&o) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("cannot build cluster: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cost = MeasuredCostModel::paper_default();
            let dp = Strategy::data_parallel(&graph, &topo);
            let ex = expert::strategy(&graph, &topo);
            let max_microbatches = o.microbatches.unwrap_or(1);
            if let Some(ParamSyncFlag::Fixed(ParamSync::ParamServer { server_device })) =
                o.param_sync
            {
                if server_device >= topo.num_devices() {
                    eprintln!(
                        "--param-sync ps:{server_device} names a device outside the \
                         {}-GPU cluster",
                        topo.num_devices()
                    );
                    return ExitCode::FAILURE;
                }
            }
            let recompute_axis = o.recompute == Some(RecomputeFlag::Search);
            let mem_budget = o.mem_budget.map(|f| f.build(&topo));
            println!(
                "searching {} on {} x {} ({} ops, {} evals, {}{}{}{}{})...",
                o.model,
                o.gpus,
                o.cluster.label(),
                graph.len(),
                o.evals,
                if o.legacy {
                    "legacy sequential driver".to_string()
                } else {
                    format!("{} chains", o.chains)
                },
                if max_microbatches > 1 {
                    format!(", up to {max_microbatches} microbatches")
                } else {
                    String::new()
                },
                match o.param_sync {
                    None => String::new(),
                    Some(ParamSyncFlag::Search) => ", sync axis open".to_string(),
                    Some(ParamSyncFlag::Fixed(mode)) => format!(", sync axis open from {mode}"),
                },
                if recompute_axis {
                    ", recompute axis open"
                } else {
                    ""
                },
                match o.mem_budget {
                    None => String::new(),
                    Some(MemBudgetFlag::UniformMb(mb)) => format!(", {mb} MB budget/device"),
                    Some(MemBudgetFlag::DeviceDefaults) =>
                        ", device-default memory budgets".to_string(),
                }
            );
            // --warm replaces the default seeds entirely: the search never
            // returns worse than an initial candidate, so refining an
            // exported strategy (e.g. re-searching it with pipelining
            // enabled) is monotone by construction.
            let mut initials: Vec<Strategy> = match &o.warm {
                None => vec![dp.clone(), ex.clone()],
                Some(path) => match load_strategy(path, &graph, &topo) {
                    Ok(s) => vec![s],
                    Err(e) => {
                        eprintln!("cannot load warm-start strategy: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            // A concrete --param-sync mode overrides the default on every
            // initial candidate; the axis then stays open so the search
            // can still retune individual layers away from it.
            if let Some(ParamSyncFlag::Fixed(mode)) = o.param_sync {
                initials = initials
                    .into_iter()
                    .map(|s| s.with_param_sync_everywhere(mode))
                    .collect();
            }
            let param_sync_axis = o.param_sync.is_some();
            let budget = Budget::evaluations(o.evals);
            let r: SearchResult = if o.legacy {
                let mut opt = McmcOptimizer::new(o.seed);
                opt.max_microbatches = max_microbatches;
                opt.param_sync = param_sync_axis;
                opt.recompute = recompute_axis;
                opt.mem_budget = mem_budget.clone();
                opt.search(
                    &graph,
                    &topo,
                    &cost,
                    &initials,
                    budget,
                    SimConfig::default(),
                )
            } else {
                SearchRequest::new(o.seed)
                    .chains(o.chains)
                    .exchange_every(o.exchange_every)
                    .max_microbatches(max_microbatches)
                    .param_sync(param_sync_axis)
                    .recompute(recompute_axis)
                    .mem_budget(mem_budget.clone())
                    .run(
                        &graph,
                        &topo,
                        &cost,
                        &initials,
                        budget,
                        SimConfig::default(),
                    )
            };
            report("data parallelism", &graph, &topo, &dp);
            report("expert", &graph, &topo, &ex);
            report("flexflow", &graph, &topo, &r.best);
            if r.best.microbatches() > 1 {
                println!(
                    "pipeline: best strategy uses {} microbatches",
                    r.best.microbatches()
                );
            }
            if r.best.has_custom_param_sync() {
                println!("param-sync: best strategy departs from all-reduce");
            }
            if r.best.has_recompute() {
                println!(
                    "recompute: best strategy recomputes activations on {} ops",
                    r.best.recomputes().iter().filter(|&&on| on).count()
                );
            }
            let mut over_budget = false;
            if let Some(budget) = &mem_budget {
                let fp = memory::footprint(&graph, &topo, &r.best);
                let (dev, bytes) = fp.peak_with_state();
                println!(
                    "memory: peak device {dev} needs {:.1} MB (budget {:.1} MB)",
                    mib(bytes),
                    mib(budget.cap(topo.device_ids().nth(dev).expect("peak device exists")))
                );
                if let Some(v) = memory::budget_violation(&fp, &topo, budget) {
                    eprintln!("memory: no feasible strategy found — {v}");
                    over_budget = true;
                }
            }
            if o.verbose {
                let t = r.telemetry;
                println!(
                    "search: {} proposals in {:.2}s ({} accepted), best {:.3} ms/iter",
                    r.evals,
                    r.elapsed_seconds,
                    r.accepted,
                    r.best_cost_us / 1e3
                );
                println!(
                    "chains: {} ({} driver; evals per chain: {})",
                    r.chain_evals.len(),
                    if o.legacy { "sequential" } else { "parallel" },
                    r.chain_evals
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                println!(
                    "delta txn: {} applies, {} commits, {} rollbacks",
                    t.applies, t.commits, t.rollbacks
                );
                println!(
                    "delta repair: {} steps ({:.1}/proposal), {} adaptive sweeps, \
                     {} budget fallbacks",
                    t.repair_steps,
                    t.repair_steps as f64 / t.applies.max(1) as f64,
                    t.sweeps,
                    t.fallbacks
                );
                println!(
                    "undo journal: {} slots total ({:.1}/proposal), deepest {}",
                    t.journal_slots,
                    t.journal_slots as f64 / t.applies.max(1) as f64,
                    t.max_journal_depth
                );
            }
            if let Some(path) = o.out {
                let dump = strategy_io::export(&graph, &topo, &r.best);
                let json = serde_json::to_string_pretty(&dump).expect("serialize");
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("cannot write strategy file {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("strategy written to {path}");
            }
            if over_budget {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "simulate" => {
            let Some(o) = parse(&args[1..]) else {
                return usage();
            };
            let (graph, topo) = match build(&o) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("cannot build cluster: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut s = match &o.strategy {
                None => Strategy::data_parallel(&graph, &topo),
                // Strategy files are untrusted input: unreadable paths,
                // malformed JSON and illegal configurations must all exit
                // nonzero with a message, never panic.
                Some(path) => match load_strategy(path, &graph, &topo) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("cannot load strategy: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            // An explicit --microbatches overrides whatever the strategy
            // (file) carries; absence leaves it untouched. The same
            // legality rule as strategy files and the search applies —
            // quoting a cost for a count the rest of the toolchain
            // rejects would be a trap.
            if let Some(m) = o.microbatches {
                if !flexflow::core::soap::legal_microbatch_counts(&graph, m).contains(&m) {
                    eprintln!(
                        "--microbatches {m} is invalid for {}: the count must divide \
                         the sample extent of every operation",
                        o.model
                    );
                    return ExitCode::FAILURE;
                }
                s.set_microbatches(m);
            }
            match o.param_sync {
                None => {}
                Some(ParamSyncFlag::Search) => {
                    eprintln!(
                        "--param-sync search only applies to the search subcommand; \
                         simulate needs a concrete mode (allreduce|zero1:K|ps:D)"
                    );
                    return ExitCode::FAILURE;
                }
                Some(ParamSyncFlag::Fixed(mode)) => {
                    if let ParamSync::ParamServer { server_device } = mode {
                        if server_device >= topo.num_devices() {
                            eprintln!(
                                "--param-sync ps:{server_device} names a device outside \
                                 the {}-GPU cluster",
                                topo.num_devices()
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                    s = s.with_param_sync_everywhere(mode);
                }
            }
            match o.recompute {
                None => {}
                Some(RecomputeFlag::Search) => {
                    eprintln!(
                        "--recompute search only applies to the search subcommand; \
                         simulate takes \"off\" to strip a strategy file's recompute bits"
                    );
                    return ExitCode::FAILURE;
                }
                Some(RecomputeFlag::Off) => s = s.with_recompute_everywhere(false),
            }
            if let Some(budget) = o.mem_budget.map(|f| f.build(&topo)) {
                let fp = memory::footprint(&graph, &topo, &s);
                let (dev, bytes) = fp.peak_with_state();
                println!(
                    "memory: peak device {dev} needs {:.1} MB (budget {:.1} MB)",
                    mib(bytes),
                    mib(budget.cap(topo.device_ids().nth(dev).expect("peak device exists")))
                );
                if let Some(v) = memory::budget_violation(&fp, &topo, &budget) {
                    eprintln!("OOM: {v}");
                    return ExitCode::FAILURE;
                }
            }
            report("simulated", &graph, &topo, &s);
            ExitCode::SUCCESS
        }
        "baselines" => {
            let Some(o) = parse(&args[1..]) else {
                return usage();
            };
            let (graph, topo) = match build(&o) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("cannot build cluster: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cost = MeasuredCostModel::paper_default();
            report(
                "data parallelism",
                &graph,
                &topo,
                &Strategy::data_parallel(&graph, &topo),
            );
            report(
                "model parallelism",
                &graph,
                &topo,
                &model_parallel(&graph, &topo, &cost),
            );
            report("expert", &graph, &topo, &expert::strategy(&graph, &topo));
            report(
                "optcnn",
                &graph,
                &topo,
                &optcnn::optimize(&graph, &topo, &cost).strategy,
            );
            ExitCode::SUCCESS
        }
        "serve" => serve(&args[1..]),
        _ => usage(),
    }
}
