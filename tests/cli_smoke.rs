//! Smoke tests for the `flexflow` CLI binary: every subcommand must exit 0
//! and emit parseable output from a clean checkout (fast settings only).

use std::path::Path;
use std::process::{Command, Output};

fn flexflow(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flexflow"))
        .args(args)
        .output()
        .expect("spawn flexflow binary")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "flexflow exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

/// Extracts the `samples/s` figure from a strategy report line.
fn parse_throughput(line: &str) -> f64 {
    let head = line
        .split("samples/s")
        .next()
        .unwrap_or_else(|| panic!("no samples/s in line: {line}"));
    head.split_whitespace()
        .next_back()
        .and_then(|tok| tok.parse::<f64>().ok())
        .unwrap_or_else(|| panic!("unparseable throughput in line: {line}"))
}

#[test]
fn models_lists_the_zoo() {
    let out = stdout_of(&flexflow(&["models"]));
    for model in [
        "alexnet",
        "inception_v3",
        "resnet101",
        "rnnlm",
        "nmt",
        "lenet",
    ] {
        assert!(out.contains(model), "models output missing {model}:\n{out}");
    }
}

#[test]
fn search_reports_contenders_and_saves_a_loadable_strategy() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let strategy_path = dir.join("lenet.strategy.json");
    let out = stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "50",
        "--seed",
        "7",
        "--out",
        strategy_path.to_str().unwrap(),
    ]));
    let ff_line = out
        .lines()
        .find(|l| l.starts_with("flexflow"))
        .unwrap_or_else(|| panic!("no flexflow result line:\n{out}"));
    assert!(parse_throughput(ff_line) > 0.0);

    // The emitted artifact is valid JSON that imports against the graph.
    assert!(
        Path::new(&strategy_path).exists(),
        "strategy file not written"
    );
    let text = std::fs::read_to_string(&strategy_path).expect("read strategy file");
    let dump: flexflow::core::strategy_io::StrategyDump =
        serde_json::from_str(&text).expect("strategy file is valid JSON");
    assert_eq!(dump.model, "lenet");
    assert!(!dump.ops.is_empty());

    // And `simulate --strategy` accepts it.
    let sim = stdout_of(&flexflow(&[
        "simulate",
        "lenet",
        "--strategy",
        strategy_path.to_str().unwrap(),
    ]));
    let sim_line = sim
        .lines()
        .find(|l| l.starts_with("simulated"))
        .unwrap_or_else(|| panic!("no simulated line:\n{sim}"));
    assert!(parse_throughput(sim_line) > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_reports_data_parallel_by_default() {
    let out = stdout_of(&flexflow(&["simulate", "lenet"]));
    let line = out
        .lines()
        .find(|l| l.starts_with("simulated"))
        .unwrap_or_else(|| panic!("no simulated line:\n{out}"));
    assert!(parse_throughput(line) > 0.0);
    assert!(line.contains("ms/iter"), "missing ms/iter in: {line}");
}

#[test]
fn baselines_reports_all_four() {
    let out = stdout_of(&flexflow(&["baselines", "lenet"]));
    for name in ["data parallelism", "model parallelism", "expert", "optcnn"] {
        assert!(
            out.lines().any(|l| l.starts_with(name)),
            "baselines output missing {name:?}:\n{out}"
        );
    }
}

#[test]
fn search_verbose_prints_delta_telemetry() {
    let out = stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "40",
        "--seed",
        "3",
        "--verbose",
    ]));
    for marker in ["delta txn:", "delta repair:", "undo journal:"] {
        assert!(
            out.lines().any(|l| l.starts_with(marker)),
            "--verbose output missing {marker:?}:\n{out}"
        );
    }
    // The transactional walk must actually commit and roll back.
    let txn_line = out
        .lines()
        .find(|l| l.starts_with("delta txn:"))
        .expect("telemetry line");
    assert!(
        txn_line.contains("applies") && txn_line.contains("rollbacks"),
        "unexpected telemetry line: {txn_line}"
    );
}

#[test]
fn search_chains_is_deterministic_and_one_chain_matches_legacy() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-chains-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let search = |extra: &[&str], out: &str| {
        let mut args = vec!["search", "lenet", "--evals", "60", "--seed", "9"];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--out", out]);
        stdout_of(&flexflow(&args));
        std::fs::read_to_string(out).expect("read exported strategy")
    };

    // Fixed (seed, chains) => bit-identical exported strategy.
    let a = search(
        &["--chains", "3", "--exchange-every", "16"],
        &path("a.json"),
    );
    let b = search(
        &["--chains", "3", "--exchange-every", "16"],
        &path("b.json"),
    );
    assert_eq!(a, b, "--chains 3 must be deterministic for a fixed seed");

    // One parallel chain reproduces the legacy sequential driver.
    let one = search(&["--chains", "1"], &path("one.json"));
    let legacy = search(&["--legacy"], &path("legacy.json"));
    assert_eq!(one, legacy, "--chains 1 must reproduce --legacy");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_verbose_reports_per_chain_evals() {
    let out = stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "40",
        "--seed",
        "5",
        "--chains",
        "2",
        "--verbose",
    ]));
    let line = out
        .lines()
        .find(|l| l.starts_with("chains:"))
        .unwrap_or_else(|| panic!("no chains line in --verbose output:\n{out}"));
    assert!(
        line.contains("2 (parallel driver"),
        "unexpected chains line: {line}"
    );
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = flexflow(&["frobnicate"]);
    assert!(!out.status.success(), "unknown subcommand must fail");
    let out = flexflow(&[]);
    assert!(!out.status.success(), "empty invocation must fail");
    let out = flexflow(&["search", "lenet", "--chains", "0"]);
    assert!(!out.status.success(), "--chains 0 must be rejected");
}

#[test]
fn malformed_strategy_files_exit_nonzero_with_a_message() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-badjson-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = |name: &str| dir.join(name).to_str().unwrap().to_string();

    // Not JSON at all.
    let garbled = path("garbled.json");
    std::fs::write(&garbled, "{ this is not json").unwrap();
    let out = flexflow(&["simulate", "lenet", "--strategy", &garbled]);
    assert!(!out.status.success(), "malformed JSON must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not a strategy file"),
        "stderr should explain the parse failure:\n{stderr}"
    );

    // Valid JSON, wrong shape.
    let shaped = path("wrong-shape.json");
    std::fs::write(&shaped, r#"{"model":"lenet","num_devices":4}"#).unwrap();
    let out = flexflow(&["simulate", "lenet", "--strategy", &shaped]);
    assert!(!out.status.success(), "non-dump JSON must exit nonzero");

    // A structurally valid dump with an illegal degree vector: the
    // importer must reject it with an error, not panic.
    let valid = path("valid.json");
    stdout_of(&flexflow(&[
        "search", "lenet", "--evals", "5", "--seed", "1", "--out", &valid,
    ]));
    let corrupted = std::fs::read_to_string(&valid).unwrap().replacen(
        "\"degrees\": [",
        "\"degrees\": [63, ",
        1,
    );
    let bad_degrees = path("bad-degrees.json");
    std::fs::write(&bad_degrees, corrupted).unwrap();
    let out = flexflow(&["simulate", "lenet", "--strategy", &bad_degrees]);
    assert!(!out.status.success(), "illegal dump must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot load strategy"),
        "stderr should name the import failure:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must be an error, not a panic:\n{stderr}"
    );

    // Missing file.
    let out = flexflow(&["simulate", "lenet", "--strategy", &path("nope.json")]);
    assert!(!out.status.success(), "missing file must exit nonzero");

    std::fs::remove_dir_all(&dir).ok();
}

/// Runs `flexflow serve --oneshot --workers 1` over the given request
/// lines and returns one response line per request.
fn serve_oneshot(extra_args: &[&str], requests: &str) -> Vec<String> {
    use std::io::Write;
    let mut args = vec!["serve", "--oneshot", "--workers", "1"];
    args.extend_from_slice(extra_args);
    let mut child = Command::new(env!("CARGO_BIN_EXE_flexflow"))
        .args(&args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn flexflow serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(requests.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("collect serve output");
    assert!(
        out.status.success(),
        "serve exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone())
        .expect("serve output is UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn serve_oneshot_answers_hit_warm_cold_and_errors_in_band() {
    let requests = concat!(
        r#"{"model":"lenet","gpus":2,"evals":40,"seed":5}"#,
        "\n", // cold
        r#"{"model":"lenet","gpus":2,"evals":40,"seed":5}"#,
        "\n", // hit
        r#"{"model":"lenet","gpus":2,"evals":300,"seed":5}"#,
        "\n", // warm: bigger budget
        r#"{"model":"lenet","gpus":4,"evals":40,"seed":5}"#,
        "\n", // warm: other topology
        r#"{"model":"made-up"}"#,
        "\n", // in-band error
        r#"{"cmd":"stats"}"#,
        "\n",
    );
    let lines = serve_oneshot(&[], requests);
    assert_eq!(lines.len(), 6, "one response per request:\n{lines:#?}");
    for (i, expected) in [
        r#""cache":"cold""#,
        r#""cache":"hit""#,
        r#""cache":"warm""#,
        r#""cache":"warm""#,
        r#""status":"error""#,
    ]
    .iter()
    .enumerate()
    {
        assert!(
            lines[i].contains(expected),
            "response {i} should contain {expected}:\n{}",
            lines[i]
        );
    }
    // The hit answers without any simulator evaluations and repeats the
    // cold answer's cost verbatim.
    assert!(lines[1].contains(r#""evals":0"#), "{}", lines[1]);
    let cost = |line: &str| {
        line.split(r#""cost_us":"#)
            .nth(1)
            .and_then(|s| s.split(',').next())
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no cost_us in {line}"))
    };
    assert_eq!(cost(&lines[0]), cost(&lines[1]));
    assert!(
        lines[5].contains(r#""hits":1"#) && lines[5].contains(r#""warm":2"#),
        "stats should reflect the traffic: {}",
        lines[5]
    );
}

#[test]
fn serve_cache_file_survives_restarts() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let cache = dir.join("strategies.json");
    let cache_arg = cache.to_str().unwrap();
    let req = concat!(r#"{"model":"lenet","gpus":2,"evals":40,"seed":5}"#, "\n");

    let first = serve_oneshot(&["--cache", cache_arg], req);
    assert!(first[0].contains(r#""cache":"cold""#), "{}", first[0]);
    // The sharded store persists to sibling `.shard-NN` files.
    let shard_written = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .any(|e| e.file_name().to_string_lossy().contains("strategies.json.shard-"));
    assert!(shard_written, "cache shard file must be written");

    // A fresh process answers the identical request from disk.
    let second = serve_oneshot(&["--cache", cache_arg], req);
    assert!(second[0].contains(r#""cache":"hit""#), "{}", second[0]);
    assert!(second[0].contains(r#""evals":0"#), "{}", second[0]);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_bad_flags() {
    let out = flexflow(&["serve", "--workers", "0"]);
    assert!(!out.status.success(), "--workers 0 must be rejected");
    let out = flexflow(&["serve", "--frobnicate"]);
    assert!(!out.status.success(), "unknown serve flag must be rejected");
    let out = flexflow(&["serve", "--cache"]);
    assert!(!out.status.success(), "--cache without a value must fail");
}

#[test]
fn contradictory_flag_combos_are_rejected_with_a_message() {
    // --legacy runs the sequential single-chain driver: multi-chain
    // knobs next to it are contradictions, not silently ignored.
    let out = flexflow(&[
        "search", "lenet", "--evals", "10", "--legacy", "--chains", "3",
    ]);
    assert!(
        !out.status.success(),
        "--legacy --chains 3 must be rejected"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--legacy") && stderr.contains("--chains"),
        "stderr should name the conflicting flags:\n{stderr}"
    );

    let out = flexflow(&[
        "search",
        "lenet",
        "--evals",
        "10",
        "--legacy",
        "--exchange-every",
        "16",
    ]);
    assert!(
        !out.status.success(),
        "--legacy --exchange-every must be rejected"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--exchange-every"), "{stderr}");

    // --legacy --chains 1 is redundant but NOT contradictory: both name
    // the single-chain execution, so it must keep working.
    let out = flexflow(&[
        "search", "lenet", "--evals", "10", "--legacy", "--chains", "1",
    ]);
    assert!(out.status.success(), "--legacy --chains 1 must be accepted");

    let out = flexflow(&["search", "lenet", "--microbatches", "0"]);
    assert!(!out.status.success(), "--microbatches 0 must be rejected");

    // simulate applies the same legality rule as strategy files and the
    // search: a count that does not divide the batch is refused, not
    // silently simulated with uneven slabs.
    let out = flexflow(&["simulate", "rnnlm", "--gpus", "4", "--microbatches", "7"]);
    assert!(
        !out.status.success(),
        "--microbatches 7 (batch 64) must be rejected"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--microbatches 7") && stderr.contains("divide"),
        "stderr should explain the legality rule:\n{stderr}"
    );
}

#[test]
fn ragged_gpu_counts_are_rejected_with_a_clear_error() {
    // paper clusters have 4 GPUs per node; 6 is not a whole number of
    // nodes and used to silently truncate to one fully-connected node.
    let out = flexflow(&["simulate", "lenet", "--gpus", "6"]);
    assert!(!out.status.success(), "--gpus 6 must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("whole number"),
        "stderr should explain node divisibility:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must be an error, not a panic:\n{stderr}"
    );
    // Sub-node counts stay legal (the paper's 1/2-GPU points).
    let out = flexflow(&["simulate", "lenet", "--gpus", "2"]);
    assert!(out.status.success(), "--gpus 2 is one partial node");
}

#[test]
fn cluster_presets_build_hierarchical_topologies() {
    // A preset name sizes the cluster itself.
    let out = stdout_of(&flexflow(&["simulate", "lenet", "--cluster", "p100x8-ib"]));
    assert!(parse_throughput(out.lines().next().unwrap()) > 0.0);

    // Search accepts presets too and reports the preset name.
    let out = stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--cluster",
        "p100x8-ib",
        "--evals",
        "20",
        "--seed",
        "2",
        "--chains",
        "1",
    ]));
    assert!(
        out.contains("8 x p100x8-ib"),
        "search header should name the preset:\n{out}"
    );

    // A typo'd preset fails at the flag with the example list.
    let out = flexflow(&["simulate", "lenet", "--cluster", "p100x8"]);
    assert!(!out.status.success(), "bad preset must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("p100x64-ib"),
        "stderr should list preset examples:\n{stderr}"
    );

    // --gpus next to a preset is contradictory, not silently ignored.
    let out = flexflow(&["simulate", "lenet", "--cluster", "p100x8-ib", "--gpus", "4"]);
    assert!(!out.status.success(), "--gpus + preset must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("contradictory"), "{stderr}");

    // Flat A100 clusters do not exist; the error points at presets.
    let out = flexflow(&["simulate", "lenet", "--cluster", "a100"]);
    assert!(!out.status.success(), "flat a100 must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("a100x64-ib"),
        "stderr should point at a preset:\n{stderr}"
    );
}

#[test]
fn microbatch_search_exports_and_simulate_accepts_pipelined_strategies() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-mb-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let base = dir.join("base.json");
    let pipe = dir.join("pipe.json");

    // Non-pipelined baseline search.
    let out = stdout_of(&flexflow(&[
        "search",
        "rnnlm",
        "--gpus",
        "4",
        "--evals",
        "30",
        "--seed",
        "11",
        "--chains",
        "1",
        "--out",
        base.to_str().unwrap(),
    ]));
    let cost = |text: &str, label: &str| {
        let line = text
            .lines()
            .find(|l| l.starts_with(label))
            .unwrap_or_else(|| panic!("no {label} line:\n{text}"));
        line.split_whitespace()
            .nth(label.split_whitespace().count())
            .and_then(|t| t.parse::<f64>().ok())
            .unwrap_or_else(|| panic!("unparseable cost in {line}"))
    };
    let base_cost = cost(&out, "flexflow");

    // Warm pipelined refinement can never end worse than its seed.
    let out = stdout_of(&flexflow(&[
        "search",
        "rnnlm",
        "--gpus",
        "4",
        "--evals",
        "60",
        "--seed",
        "11",
        "--chains",
        "1",
        "--microbatches",
        "4",
        "--warm",
        base.to_str().unwrap(),
        "--out",
        pipe.to_str().unwrap(),
    ]));
    let pipe_cost = cost(&out, "flexflow");
    assert!(
        pipe_cost <= base_cost + 1e-9,
        "pipelined warm search must not regress: {pipe_cost} vs {base_cost}"
    );

    // The exported dump carries the microbatch field and simulate loads
    // it; an explicit --microbatches overrides the file's count.
    let text = std::fs::read_to_string(&pipe).unwrap();
    let dump: flexflow::core::strategy_io::StrategyDump =
        serde_json::from_str(&text).expect("pipelined strategy file parses");
    assert!(dump.microbatches >= 1);
    let sim = stdout_of(&flexflow(&[
        "simulate",
        "rnnlm",
        "--gpus",
        "4",
        "--strategy",
        pipe.to_str().unwrap(),
    ]));
    assert!(parse_throughput(sim.lines().next().unwrap()) > 0.0);
    let sim = stdout_of(&flexflow(&[
        "simulate",
        "rnnlm",
        "--gpus",
        "4",
        "--strategy",
        base.to_str().unwrap(),
        "--microbatches",
        "2",
    ]));
    assert!(parse_throughput(sim.lines().next().unwrap()) > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pre_pipeline_strategy_files_still_load() {
    // Strategy files written before the `microbatches` field existed must
    // keep importing (defaulting to 1 = whole-batch execution).
    let dir = std::env::temp_dir().join(format!("flexflow-cli-v1strat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("v1.json");
    let fresh = dir.join("fresh.json");
    stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "5",
        "--seed",
        "1",
        "--out",
        fresh.to_str().unwrap(),
    ]));
    let text = std::fs::read_to_string(&fresh).unwrap();
    assert!(text.contains("\"microbatches\""));
    // Strip the field to fabricate a v1-era file.
    let v1: String = text
        .lines()
        .filter(|l| !l.contains("\"microbatches\""))
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&path, v1).unwrap();
    let out = stdout_of(&flexflow(&[
        "simulate",
        "lenet",
        "--strategy",
        path.to_str().unwrap(),
    ]));
    assert!(parse_throughput(out.lines().next().unwrap()) > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn param_sync_search_exports_modes_and_simulate_accepts_them() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-psync-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("zero1.json");

    // A fixed --param-sync mode seeds every candidate with it and opens
    // the sync axis; the export carries the per-op mode tokens.
    let out = stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "20",
        "--seed",
        "9",
        "--chains",
        "1",
        "--param-sync",
        "zero1:4",
        "--out",
        path.to_str().unwrap(),
    ]));
    assert!(
        out.contains("sync axis open from zero1:4"),
        "search banner missing the sync-axis note:\n{out}"
    );
    assert!(
        out.contains("param-sync: best strategy departs from all-reduce"),
        "zero1-seeded search should report a custom sync layout:\n{out}"
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains("\"param_sync\""),
        "export missing param_sync:\n{text}"
    );
    let dump: flexflow::core::strategy_io::StrategyDump =
        serde_json::from_str(&text).expect("param-sync strategy file parses");
    assert!(!dump.param_sync.is_empty());
    assert!(
        dump.param_sync.iter().any(|t| t.starts_with("zero1:")),
        "expected zero1 tokens in {:?}",
        dump.param_sync
    );

    // Simulate loads the file, and a concrete --param-sync override works.
    let sim = stdout_of(&flexflow(&[
        "simulate",
        "lenet",
        "--strategy",
        path.to_str().unwrap(),
    ]));
    assert!(parse_throughput(sim.lines().next().unwrap()) > 0.0);
    let sim = stdout_of(&flexflow(&["simulate", "lenet", "--param-sync", "ps:1"]));
    assert!(parse_throughput(sim.lines().next().unwrap()) > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn param_sync_flag_rejects_bad_modes() {
    // Unknown mode grammar.
    let out = flexflow(&["search", "lenet", "--evals", "5", "--param-sync", "zero9:4"]);
    assert!(!out.status.success(), "zero9:4 must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown param-sync mode"), "stderr:\n{err}");

    // Parameter-server device outside the cluster.
    let out = flexflow(&["search", "lenet", "--evals", "5", "--param-sync", "ps:99"]);
    assert!(
        !out.status.success(),
        "ps:99 on a 4-GPU cluster must be rejected"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("outside the 4-GPU cluster"), "stderr:\n{err}");

    // `search` is a search-only value; simulate needs a concrete mode.
    let out = flexflow(&["simulate", "lenet", "--param-sync", "search"]);
    assert!(
        !out.status.success(),
        "simulate --param-sync search must be rejected"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("only applies to the search subcommand"),
        "stderr:\n{err}"
    );
}

#[test]
fn pre_param_sync_strategy_files_still_load() {
    // Strategy files written before the `param_sync` field existed must
    // keep importing (defaulting to all-reduce everywhere). The field is
    // a multi-line array in pretty output, so fabricate the old format by
    // dropping the key from the parsed value rather than filtering lines.
    let dir = std::env::temp_dir().join(format!("flexflow-cli-v2strat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("v2.json");
    let fresh = dir.join("fresh.json");
    stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "5",
        "--seed",
        "1",
        "--param-sync",
        "zero1:2",
        "--out",
        fresh.to_str().unwrap(),
    ]));
    let text = std::fs::read_to_string(&fresh).unwrap();
    assert!(text.contains("\"param_sync\""));
    let mut v: serde_json::Value = serde_json::from_str(&text).unwrap();
    if let serde_json::Value::Object(entries) = &mut v {
        entries.retain(|(k, _)| k != "param_sync");
    }
    let v2 = serde_json::to_string(&v).unwrap();
    assert!(!v2.contains("param_sync"));
    std::fs::write(&path, v2).unwrap();
    let out = stdout_of(&flexflow(&[
        "simulate",
        "lenet",
        "--strategy",
        path.to_str().unwrap(),
    ]));
    assert!(parse_throughput(out.lines().next().unwrap()) > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

/// A strategy exported for a bigger cluster must be rejected on a smaller
/// one with an error that *names the offending op and device index* — the
/// user's actionable handle — and the same goes for an out-of-range
/// parameter-server placement. Both flow through `cannot load strategy:`.
#[test]
fn out_of_range_strategies_name_the_offending_op_and_device() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-range-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("big.json");
    stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--gpus",
        "4",
        "--evals",
        "5",
        "--seed",
        "1",
        "--out",
        path.to_str().unwrap(),
    ]));

    // Device indices 0..4 cannot map onto a 2-GPU topology.
    let out = flexflow(&[
        "simulate",
        "lenet",
        "--gpus",
        "2",
        "--strategy",
        path.to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "oversized strategy must exit nonzero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load strategy"), "{stderr}");
    assert!(
        stderr.contains("places a task on device 3"),
        "error must name the offending device index:\n{stderr}"
    );
    assert!(
        stderr.contains("only 2 devices"),
        "error must name the topology size:\n{stderr}"
    );
    assert!(
        stderr.contains("op \""),
        "error must name the offending op:\n{stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");

    // A parameter-server placement beyond the topology is the same story
    // on the sync axis: the token and the out-of-range index are named.
    let text = std::fs::read_to_string(&path).unwrap();
    let ps = dir.join("ps-out-of-range.json");
    std::fs::write(&ps, text.replacen("\"allreduce\"", "\"ps:7\"", 1)).unwrap();
    let out = flexflow(&[
        "simulate",
        "lenet",
        "--gpus",
        "4",
        "--strategy",
        ps.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "ps:7 on 4 GPUs must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot load strategy"), "{stderr}");
    assert!(stderr.contains("ps:7"), "{stderr}");
    assert!(
        stderr.contains("server device 7 is out of range"),
        "error must name the out-of-range server device:\n{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The memory flags end-to-end: a fitting simulate reports the peak and
/// budget on stdout, an impossible budget reports `OOM:` and exits
/// nonzero, the recompute axis round-trips through export/import, and
/// malformed flag values are rejected with a message.
#[test]
fn mem_budget_and_recompute_flags_end_to_end() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-mem-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // lenet fits the device-default budget with room to spare.
    let out = stdout_of(&flexflow(&["simulate", "lenet", "--mem-budget", "device"]));
    let mem_line = out
        .lines()
        .find(|l| l.starts_with("memory: peak device"))
        .unwrap_or_else(|| panic!("no memory line:\n{out}"));
    assert!(mem_line.contains("budget"), "{mem_line}");
    assert!(out.lines().any(|l| l.starts_with("simulated")));

    // Nothing fits in one megabyte.
    let out = flexflow(&["simulate", "lenet", "--mem-budget", "1"]);
    assert!(!out.status.success(), "1 MB budget must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("OOM:"), "{stderr}");

    // The recompute axis survives the export/import round trip, and
    // `--recompute off` strips it back out of a loaded file.
    let path = dir.join("rc.json");
    let out = stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "40",
        "--seed",
        "3",
        "--recompute",
        "search",
        "--out",
        path.to_str().unwrap(),
    ]));
    assert!(
        out.contains("recompute axis open"),
        "banner must announce the axis:\n{out}"
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"recompute\""), "v4 dump carries the bits");
    stdout_of(&flexflow(&[
        "simulate",
        "lenet",
        "--strategy",
        path.to_str().unwrap(),
        "--recompute",
        "off",
    ]));

    // Flag vocabulary is policed.
    for bad in [
        &["simulate", "lenet", "--recompute", "search"][..],
        &["simulate", "lenet", "--recompute", "banana"],
        &["search", "lenet", "--evals", "5", "--mem-budget", "0"],
        &["search", "lenet", "--evals", "5", "--mem-budget", "lots"],
    ] {
        let out = flexflow(bad);
        assert!(!out.status.success(), "{bad:?} must exit nonzero");
        assert!(
            !out.stderr.is_empty(),
            "{bad:?} must explain itself on stderr"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
