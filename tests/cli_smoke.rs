//! Smoke tests for the `flexflow` CLI binary: every subcommand must exit 0
//! and emit parseable output from a clean checkout (fast settings only).

use std::path::Path;
use std::process::{Command, Output};

fn flexflow(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flexflow"))
        .args(args)
        .output()
        .expect("spawn flexflow binary")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "flexflow exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

/// Extracts the `samples/s` figure from a strategy report line.
fn parse_throughput(line: &str) -> f64 {
    let head = line
        .split("samples/s")
        .next()
        .unwrap_or_else(|| panic!("no samples/s in line: {line}"));
    head.split_whitespace()
        .next_back()
        .and_then(|tok| tok.parse::<f64>().ok())
        .unwrap_or_else(|| panic!("unparseable throughput in line: {line}"))
}

#[test]
fn models_lists_the_zoo() {
    let out = stdout_of(&flexflow(&["models"]));
    for model in [
        "alexnet",
        "inception_v3",
        "resnet101",
        "rnnlm",
        "nmt",
        "lenet",
    ] {
        assert!(out.contains(model), "models output missing {model}:\n{out}");
    }
}

#[test]
fn search_reports_contenders_and_saves_a_loadable_strategy() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let strategy_path = dir.join("lenet.strategy.json");
    let out = stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "50",
        "--seed",
        "7",
        "--out",
        strategy_path.to_str().unwrap(),
    ]));
    let ff_line = out
        .lines()
        .find(|l| l.starts_with("flexflow"))
        .unwrap_or_else(|| panic!("no flexflow result line:\n{out}"));
    assert!(parse_throughput(ff_line) > 0.0);

    // The emitted artifact is valid JSON that imports against the graph.
    assert!(
        Path::new(&strategy_path).exists(),
        "strategy file not written"
    );
    let text = std::fs::read_to_string(&strategy_path).expect("read strategy file");
    let dump: flexflow::core::strategy_io::StrategyDump =
        serde_json::from_str(&text).expect("strategy file is valid JSON");
    assert_eq!(dump.model, "lenet");
    assert!(!dump.ops.is_empty());

    // And `simulate --strategy` accepts it.
    let sim = stdout_of(&flexflow(&[
        "simulate",
        "lenet",
        "--strategy",
        strategy_path.to_str().unwrap(),
    ]));
    let sim_line = sim
        .lines()
        .find(|l| l.starts_with("simulated"))
        .unwrap_or_else(|| panic!("no simulated line:\n{sim}"));
    assert!(parse_throughput(sim_line) > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_reports_data_parallel_by_default() {
    let out = stdout_of(&flexflow(&["simulate", "lenet"]));
    let line = out
        .lines()
        .find(|l| l.starts_with("simulated"))
        .unwrap_or_else(|| panic!("no simulated line:\n{out}"));
    assert!(parse_throughput(line) > 0.0);
    assert!(line.contains("ms/iter"), "missing ms/iter in: {line}");
}

#[test]
fn baselines_reports_all_four() {
    let out = stdout_of(&flexflow(&["baselines", "lenet"]));
    for name in ["data parallelism", "model parallelism", "expert", "optcnn"] {
        assert!(
            out.lines().any(|l| l.starts_with(name)),
            "baselines output missing {name:?}:\n{out}"
        );
    }
}

#[test]
fn search_verbose_prints_delta_telemetry() {
    let out = stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "40",
        "--seed",
        "3",
        "--verbose",
    ]));
    for marker in ["delta txn:", "delta repair:", "undo journal:"] {
        assert!(
            out.lines().any(|l| l.starts_with(marker)),
            "--verbose output missing {marker:?}:\n{out}"
        );
    }
    // The transactional walk must actually commit and roll back.
    let txn_line = out
        .lines()
        .find(|l| l.starts_with("delta txn:"))
        .expect("telemetry line");
    assert!(
        txn_line.contains("applies") && txn_line.contains("rollbacks"),
        "unexpected telemetry line: {txn_line}"
    );
}

#[test]
fn search_chains_is_deterministic_and_one_chain_matches_legacy() {
    let dir = std::env::temp_dir().join(format!("flexflow-cli-chains-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let search = |extra: &[&str], out: &str| {
        let mut args = vec!["search", "lenet", "--evals", "60", "--seed", "9"];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--out", out]);
        stdout_of(&flexflow(&args));
        std::fs::read_to_string(out).expect("read exported strategy")
    };

    // Fixed (seed, chains) => bit-identical exported strategy.
    let a = search(
        &["--chains", "3", "--exchange-every", "16"],
        &path("a.json"),
    );
    let b = search(
        &["--chains", "3", "--exchange-every", "16"],
        &path("b.json"),
    );
    assert_eq!(a, b, "--chains 3 must be deterministic for a fixed seed");

    // One parallel chain reproduces the legacy sequential driver.
    let one = search(&["--chains", "1"], &path("one.json"));
    let legacy = search(&["--legacy"], &path("legacy.json"));
    assert_eq!(one, legacy, "--chains 1 must reproduce --legacy");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_verbose_reports_per_chain_evals() {
    let out = stdout_of(&flexflow(&[
        "search",
        "lenet",
        "--evals",
        "40",
        "--seed",
        "5",
        "--chains",
        "2",
        "--verbose",
    ]));
    let line = out
        .lines()
        .find(|l| l.starts_with("chains:"))
        .unwrap_or_else(|| panic!("no chains line in --verbose output:\n{out}"));
    assert!(
        line.contains("2 (parallel driver"),
        "unexpected chains line: {line}"
    );
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = flexflow(&["frobnicate"]);
    assert!(!out.status.success(), "unknown subcommand must fail");
    let out = flexflow(&[]);
    assert!(!out.status.success(), "empty invocation must fail");
    let out = flexflow(&["search", "lenet", "--chains", "0"]);
    assert!(!out.status.success(), "--chains 0 must be rejected");
}
