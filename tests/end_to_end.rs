//! Cross-crate integration tests: the full pipeline from model zoo through
//! search to (simulated and real) execution, exercising the public facade
//! API exactly as a downstream user would.

use flexflow::baselines::{expert, model_parallel, optcnn};
use flexflow::core::metrics::SimMetrics;
use flexflow::core::sim::{simulate_full, SimConfig, Simulator};
use flexflow::core::taskgraph::TaskGraph;
use flexflow::core::{Budget, McmcOptimizer, Strategy};
use flexflow::costmodel::MeasuredCostModel;
use flexflow::device::clusters;
use flexflow::opgraph::zoo;
use flexflow::runtime::dataflow;
use flexflow::runtime::ground_truth::{GroundTruthConfig, GroundTruthExecutor};

#[test]
fn search_beats_or_matches_every_baseline_on_lenet() {
    let graph = zoo::lenet(64);
    let topo = clusters::p100_cluster(1);
    let cost = MeasuredCostModel::paper_default();
    let cfg = SimConfig::default();

    let eval = |s: &Strategy| {
        simulate_full(&TaskGraph::build(&graph, &topo, s, &cost, &cfg)).makespan_us()
    };
    let dp = Strategy::data_parallel(&graph, &topo);
    let mp = model_parallel(&graph, &topo, &cost);
    let ex = expert::strategy(&graph, &topo);
    let oc = optcnn::optimize(&graph, &topo, &cost).strategy;

    let mut opt = McmcOptimizer::new(5);
    let result = opt.search(
        &graph,
        &topo,
        &cost,
        std::slice::from_ref(&dp),
        Budget::evaluations(800),
        cfg,
    );
    for (name, s) in [("dp", &dp), ("mp", &mp), ("expert", &ex), ("optcnn", &oc)] {
        assert!(
            result.best_cost_us <= eval(s) * 1.001,
            "search lost to {name}: {} vs {}",
            result.best_cost_us,
            eval(s)
        );
    }
}

#[test]
fn discovered_strategy_executes_correctly_on_the_dataflow_runtime() {
    let graph = zoo::lenet(8);
    let topo = clusters::uniform_cluster(1, 4, 16.0, 4.0);
    let cost = MeasuredCostModel::paper_default();
    let mut opt = McmcOptimizer::new(6);
    let result = opt.search(
        &graph,
        &topo,
        &cost,
        &[Strategy::data_parallel(&graph, &topo)],
        Budget::evaluations(200),
        SimConfig::default(),
    );
    let inputs = dataflow::synthetic_inputs(&graph, 1);
    let serial = dataflow::execute_serial(&graph, &inputs, 2);
    let report = dataflow::execute_strategy(&graph, &topo, &result.best, &inputs, 2);
    for (op, tensor) in &report.outputs {
        assert!(
            tensor.approx_eq(&serial[op], 1e-4),
            "discovered strategy computed a different function at {op}"
        );
    }
}

#[test]
fn simulator_tracks_ground_truth_on_searched_strategies() {
    // The Fig. 11 property for strategies the optimizer actually visits.
    let graph = zoo::rnnlm(64, 4);
    let topo = clusters::p100_cluster(1);
    let cost = MeasuredCostModel::paper_default();
    let cfg = SimConfig::default();
    let mut opt = McmcOptimizer::new(17);
    let result = opt.search(
        &graph,
        &topo,
        &cost,
        &[Strategy::data_parallel(&graph, &topo)],
        Budget::evaluations(150),
        cfg,
    );
    let tg = TaskGraph::build(&graph, &topo, &result.best, &cost, &cfg);
    let sim = simulate_full(&tg).makespan_us();
    let real = GroundTruthExecutor::new(GroundTruthConfig::default()).execute(&tg, &topo);
    let rel = (sim - real).abs() / real;
    assert!(rel < 0.30, "relative error {rel:.3} outside the 30% band");
}

#[test]
fn metrics_expose_the_fig8_breakdown() {
    let graph = zoo::rnntc(64, 6);
    let topo = clusters::k80_cluster(2);
    let cost = MeasuredCostModel::paper_default();
    let cfg = SimConfig::default();
    let dp = Strategy::data_parallel(&graph, &topo);
    let tg = TaskGraph::build(&graph, &topo, &dp, &cost, &cfg);
    let state = simulate_full(&tg);
    let m = SimMetrics::collect(&tg, &state);
    assert!(m.makespan_us > 0.0);
    assert!(m.sync_bytes > 0, "DP on an RNN must pay gradient sync");
    assert!(m.compute_us > 0.0);
    assert!(m.throughput(64) > 0.0);
}

#[test]
fn simulator_facade_supports_incremental_what_if() {
    // A downstream user exploring "what if this op ran on one GPU".
    let graph = zoo::alexnet(64);
    let topo = clusters::p100_cluster(1);
    let cost = MeasuredCostModel::paper_default();
    let mut sim = Simulator::new(
        &graph,
        &topo,
        &cost,
        SimConfig::default(),
        Strategy::data_parallel(&graph, &topo),
    );
    let before = sim.cost_us();
    let fc6 = graph
        .ids()
        .find(|&id| graph.op(id).name() == "fc6")
        .unwrap();
    let single = flexflow::core::soap::ParallelConfig::on_device(graph.op(fc6), topo.device_id(0));
    let after = sim.apply(fc6, single);
    assert!(after.is_finite() && after > 0.0);
    assert_ne!(before, after);
}

#[test]
fn every_eval_model_simulates_under_every_baseline() {
    // Broad smoke coverage: all six evaluation models x four baseline
    // strategies on a 2-node cluster build valid task graphs and simulate.
    let topo = clusters::p100_cluster(2);
    let cost = MeasuredCostModel::paper_default();
    let cfg = SimConfig::default();
    for name in zoo::EVAL_MODELS {
        // small unrolls/batches keep this fast while covering every kind
        let graph = match name {
            "alexnet" => zoo::alexnet(64),
            "inception_v3" => zoo::inception_v3(16),
            "resnet101" => zoo::resnet101(16),
            "rnntc" => zoo::rnntc(64, 3),
            "rnnlm" => zoo::rnnlm(64, 3),
            "nmt" => zoo::nmt(64, 3),
            _ => unreachable!(),
        };
        let strategies = [
            ("dp", Strategy::data_parallel(&graph, &topo)),
            ("expert", expert::strategy(&graph, &topo)),
            ("mp", model_parallel(&graph, &topo, &cost)),
            ("single", Strategy::single_device(&graph, &topo, 0)),
        ];
        let mut costs = Vec::new();
        for (sname, s) in &strategies {
            let tg = TaskGraph::build(&graph, &topo, s, &cost, &cfg);
            let c = simulate_full(&tg).makespan_us();
            assert!(c > 0.0, "{name}/{sname} produced a zero makespan");
            costs.push(c);
        }
        // Sanity for the compute-heavy, parameter-light CNNs: data
        // parallelism must beat one device. (AlexNet and the RNN language
        // models are parameter-heavy; at batch 64 across nodes their DP is
        // legitimately sync-bound — the very pathology the paper attacks.)
        if matches!(name, "inception_v3" | "resnet101") {
            assert!(
                costs[3] >= costs[0],
                "{name}: single device beat data parallelism?"
            );
        }
    }
}
