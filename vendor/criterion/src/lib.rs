//! Vendored, offline-buildable subset of the `criterion` API.
//!
//! Supports the surface the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`BenchmarkId`], and
//! [`Bencher::iter`]. Measurement is plain wall-clock timing with a short
//! warm-up and a median-of-samples report printed to stdout — adequate for
//! relative, same-machine comparisons of the simulator hot path, with none
//! of the real criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered as `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Drives iterations of one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall-clock times, filled by [`Bencher::iter`].
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per sample after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let mut times = bencher.times;
        if times.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id);
            return;
        }
        times.sort();
        let median = times[times.len() / 2];
        let min = times[0];
        let max = times[times.len() - 1];
        println!(
            "{}/{}: median {:?} (min {:?}, max {:?}, {} samples)",
            self.name,
            id,
            median,
            min,
            max,
            times.len()
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (report lines are printed eagerly).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Re-export matching `criterion::black_box` call sites.
pub use std::hint::black_box;

/// Declares a group runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
