//! Vendored, offline-buildable subset of the `parking_lot` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the handful of primitives it actually uses: [`Mutex`], [`RwLock`], and
//! [`Condvar`] with `wait_for`. Everything is a thin wrapper over
//! `std::sync` that swallows lock poisoning, which matches `parking_lot`'s
//! non-poisoning semantics closely enough for this workspace (panicking
//! while holding a lock simply lets the next owner observe the data as-is).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + core::fmt::Debug> core::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// Result of a timed [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Blocks on `guard` until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks on `guard` until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already waiting");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + core::fmt::Debug> core::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.0.fmt(f)
    }
}

impl core::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        // The guard is usable again after the wait.
        *g = true;
        assert!(*g);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out(), "waiter should be woken promptly");
        }
        t.join().unwrap();
    }
}
