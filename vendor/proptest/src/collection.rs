//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy generating `Vec`s of another strategy's values.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_inclusive(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
