//! Vendored, offline-buildable subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the property-testing surface its tests use: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, range / tuple / [`Just`] / mapped /
//! [`prop_oneof!`] / `prop::collection::vec` strategies, and the
//! `prop_assert*` family. Generation is deterministic per test name, so
//! failures reproduce exactly on re-run. There is **no shrinking**: a
//! failing case reports the case number and panics, which is enough to
//! debug deterministic generators.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..10, (a, b) in (0u64..4, 0u64..4)) {
///         prop_assert!(x < 10 && a < 4 && b < 4);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $p = $crate::strategy::Strategy::gen_value(&($s), &mut rng);
                            )+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => case += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(64).saturating_add(1024) {
                                panic!(
                                    "proptest `{}`: too many prop_assume! rejections ({})",
                                    stringify!($name),
                                    rejected
                                );
                            }
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest `{}` failed at case {} (deterministic; rerun reproduces): {}",
                                stringify!($name),
                                case,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left == *__right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left == *__right,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __left,
                    __right
                );
            }
        }
    };
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__left, __right) => {
                $crate::prop_assert!(
                    *__left != *__right,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left
                );
            }
        }
    };
}

/// Discards the current case (regenerating a fresh one) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Chooses uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::boxed($s) ),+
        ])
    };
}
