//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts the value (bounded attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Erases a strategy's concrete type, for heterogeneous unions.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_inclusive(0, self.options.len() - 1);
        self.options[idx].gen_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
