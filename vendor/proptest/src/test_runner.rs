//! Test-run configuration, case-level errors, and the deterministic RNG
//! backing value generation.

/// How a generated case ended, when it did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (the payload is the
    /// stringified precondition).
    Reject(String),
    /// The case failed an assertion (the payload is the message).
    Fail(String),
}

/// Per-test configuration, mirroring the fields the workspace uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of passing cases required for the test to succeed.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic generator state: SplitMix64 seeded from the test name.
///
/// Every run of the same test walks the identical case sequence, so a
/// reported failing case number is reproducible by simply re-running.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as usize;
        }
        lo + (self.next_u64() % (span + 1)) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
