//! Vendored, offline-buildable subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of `rand` it uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and
//! [`rngs::StdRng`]. The generator core is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, statistically strong enough
//! for MCMC search and tests, and explicitly **not** cryptographic (the
//! real `StdRng` is ChaCha-based, so seeded streams differ from upstream).

/// Random number generator core: anything that can emit `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over all values for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
