//! Vendored, offline-buildable subset of the `serde` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serde: [`Serialize`] and [`Deserialize`] traits defined
//! directly over an in-memory JSON [`Value`] model (no `Serializer` /
//! `Deserializer` visitors), plus derive macros behind the `derive`
//! feature. The companion vendored `serde_json` crate renders [`Value`] to
//! text and parses it back. This supports everything the workspace needs —
//! plain structs of numbers, strings, vectors, and maps, including
//! `#[serde(flatten)]` on serialize — and nothing more.

mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types convertible into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into an in-memory JSON value.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from an in-memory JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch between the
    /// value and the expected shape.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Error for an object missing a required field.
    pub fn missing_field(name: &str) -> Self {
        Self(format!("missing field `{name}`"))
    }

    /// Error for a value of the wrong JSON type.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self(format!("expected {what}, got {}", got.kind()))
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::PosInt(i as u64))
                } else {
                    Value::Number(Number::NegInt(i))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number", v))? as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

macro_rules! impl_tuple_serialize {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
    )*};
}

impl_tuple_serialize! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Sort for deterministic artifacts regardless of hasher state.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}
