//! The in-memory JSON data model shared by the vendored `serde` and
//! `serde_json` shims.

/// A JSON number: unsigned, signed-negative, or floating point.
///
/// Keeping integers exact (instead of routing everything through `f64`)
/// lets `u64` tensor dimensions and device indices round-trip losslessly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

/// An in-memory JSON value.
///
/// Objects preserve insertion order (struct field order) so emitted
/// artifacts stay human-auditable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object as an ordered list of key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The JSON type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object by key.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (including
    /// floats with an exact non-negative integral value).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            Value::Number(Number::NegInt(_)) => None,
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered key/value entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}
