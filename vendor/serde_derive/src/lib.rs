//! Vendored, offline-buildable derive macros for the vendored `serde`.
//!
//! Implemented with the raw `proc_macro` API (no `syn`/`quote`, which are
//! unavailable offline). Supports exactly what the workspace uses: plain
//! structs with named fields, plus `#[serde(flatten)]` on serialize. Tuple
//! structs, enums, generics, and other serde attributes produce a
//! `compile_error!` instead of silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    flatten: bool,
}

struct Input {
    type_name: String,
    fields: Vec<Field>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parses `struct Name { fields }` out of the derive input token stream.
fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility before the `struct` keyword,
    // rejecting container-level serde attributes (none are supported).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let attr: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = attr.first() {
                        if id.to_string() == "serde" {
                            let inner = match attr.get(1) {
                                Some(TokenTree::Group(g)) => g.stream().to_string(),
                                _ => String::new(),
                            };
                            return Err(format!(
                                "vendored serde derive does not support container \
                                 attribute #[serde({inner})]"
                            ));
                        }
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => break,
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(format!(
                    "vendored serde derive supports only structs, found `{id}`"
                ));
            }
            other => return Err(format!("unexpected token before `struct`: `{other}`")),
        }
    }
    // `struct`
    i += 1;
    let type_name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err("vendored serde derive does not support generic structs".into());
        }
        _ => {
            return Err("vendored serde derive supports only structs with named fields".into());
        }
    };

    let fields = parse_fields(body)?;
    Ok(Input { type_name, fields })
}

/// Parses named fields, honouring `#[serde(flatten)]` and rejecting every
/// other serde attribute.
fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut flatten = false;
        // Attributes (doc comments arrive as `#[doc = ...]`).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            let group = match tokens.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                _ => return Err("malformed attribute on field".into()),
            };
            let attr: Vec<TokenTree> = group.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = attr.first() {
                if id.to_string() == "serde" {
                    let inner = match attr.get(1) {
                        Some(TokenTree::Group(g)) => g.stream().to_string(),
                        _ => String::new(),
                    };
                    if inner.trim() == "flatten" {
                        flatten = true;
                    } else {
                        return Err(format!(
                            "vendored serde derive does not support #[serde({inner})]"
                        ));
                    }
                }
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, flatten });
    }
    Ok(fields)
}

/// Derives the vendored `serde::Serialize` (JSON-object form; fields in
/// declaration order; `#[serde(flatten)]` splices nested objects).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let mut body = String::new();
    for f in &parsed.fields {
        if f.flatten {
            body.push_str(&format!(
                "match ::serde::Serialize::serialize_value(&self.{name}) {{\n\
                     ::serde::Value::Object(__nested) => __obj.extend(__nested),\n\
                     __other => __obj.push((::std::string::String::from({name:?}), __other)),\n\
                 }}\n",
                name = f.name
            ));
        } else {
            body.push_str(&format!(
                "__obj.push((::std::string::String::from({name:?}), \
                 ::serde::Serialize::serialize_value(&self.{name})));\n",
                name = f.name
            ));
        }
    }
    let out = format!(
        "impl ::serde::Serialize for {ty} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                     ::std::vec::Vec::with_capacity({cap});\n\
                 {body}\
                 ::serde::Value::Object(__obj)\n\
             }}\n\
         }}\n",
        ty = parsed.type_name,
        cap = parsed.fields.len(),
        body = body
    );
    out.parse().unwrap()
}

/// Derives the vendored `serde::Deserialize` (from a JSON object keyed by
/// field names; `#[serde(flatten)]` is not supported on deserialize).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    if parsed.fields.iter().any(|f| f.flatten) {
        return compile_error(
            "vendored serde derive does not support #[serde(flatten)] on Deserialize",
        );
    }
    let mut body = String::new();
    for f in &parsed.fields {
        body.push_str(&format!(
            "{name}: ::serde::Deserialize::deserialize_value(\n\
                 __v.get_field({name:?})\n\
                     .ok_or_else(|| ::serde::DeError::missing_field({name:?}))?,\n\
             )?,\n",
            name = f.name
        ));
    }
    let out = format!(
        "impl ::serde::Deserialize for {ty} {{\n\
             fn deserialize_value(__v: &::serde::Value)\n\
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if __v.as_object().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::DeError::expected(\"object\", __v));\n\
                 }}\n\
                 ::std::result::Result::Ok(Self {{ {body} }})\n\
             }}\n\
         }}\n",
        ty = parsed.type_name,
        body = body
    );
    out.parse().unwrap()
}
