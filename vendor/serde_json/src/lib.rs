//! Vendored, offline-buildable subset of the `serde_json` API.
//!
//! Renders the vendored `serde`'s [`Value`] model to JSON text and parses
//! it back. Supports [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], and the [`json!`] macro over flat literal-keyed objects
//! and arrays — the surface the workspace uses.

pub use serde::{Number, Value};

/// Errors from serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self(e.to_string())
    }
}

/// Converts any serializable value into the in-memory [`Value`] model.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the vendored value model; the `Result` mirrors the real
/// `serde_json` signature so call sites can `unwrap`/`expect` as usual.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
///
/// # Errors
///
/// Infallible for the vendored value model (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::deserialize_value(&value)?)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports `null`, object literals with string-literal keys and expression
/// values, array literals of expressions, and bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        // Like the real serde_json, non-finite floats render as null.
        Number::Float(f) if !f.is_finite() => out.push_str("null"),
        Number::Float(f) => {
            let s = f.to_string();
            out.push_str(&s);
            // Keep floats distinguishable from integers on re-parse.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(Error::new(
                                            "expected low surrogate after high surrogate",
                                        ));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::Number(Number::NegInt(-(i as i64))));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = json!({
            "name": "lenet",
            "devices": [0, 1, 2],
            "cost": 1.5,
            "neg": -3,
            "flag": true,
            "nothing": Value::Null,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}≠🦀".to_string());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&Value::Number(Number::Float(3.0))).unwrap();
        assert_eq!(s, "3.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 3.0);
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX - 1;
        let s = to_string(&big).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn typed_errors_are_reported() {
        assert!(from_str::<u64>("\"nope\"").is_err());
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn surrogate_escapes_validated() {
        // A valid pair decodes to the astral-plane character.
        let v: Value = from_str("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(v, Value::String("🦀".to_string()));
        // High surrogate followed by a non-low-surrogate is rejected.
        assert!(from_str::<Value>("\"\\ud800\\u0041\"").is_err());
        // Lone high surrogate at end of string is rejected.
        assert!(from_str::<Value>("\"\\ud800\"").is_err());
    }
}
